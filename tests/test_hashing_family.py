"""splitmix64 hash family and key canonicalisation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.family import HashFamily, canonical_key, fnv1a64, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_bijective_on_sample(self):
        values = {splitmix64(x) for x in range(10_000)}
        assert len(values) == 10_000

    def test_64_bit_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) <= 2**64 - 1

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = bin(splitmix64(0) ^ splitmix64(1)).count("1")
        assert 16 <= flips <= 48

    @given(st.integers(0, 2**64 - 1))
    def test_range_property(self, x):
        assert 0 <= splitmix64(x) <= 2**64 - 1


class TestFnv1a64:
    def test_known_empty(self):
        # FNV-1a offset basis.
        assert fnv1a64(b"") == 0xCBF29CE484222325

    def test_distinct_inputs(self):
        assert fnv1a64(b"a") != fnv1a64(b"b")


class TestCanonicalKey:
    def test_int_passthrough(self):
        assert canonical_key(123) == 123

    def test_int_masked_to_64_bits(self):
        assert canonical_key(2**70 + 5) == canonical_key(5) == 5

    def test_str_stable(self):
        assert canonical_key("user-1") == canonical_key("user-1")

    def test_str_vs_bytes_equivalent(self):
        assert canonical_key("abc") == canonical_key(b"abc")

    def test_unsupported(self):
        with pytest.raises(TypeError):
            canonical_key([1, 2])


class TestHashFamily:
    def test_members_independent(self):
        family = HashFamily(seed=1)
        h0 = [family.hash(0, k) for k in range(100)]
        h1 = [family.hash(1, k) for k in range(100)]
        assert h0 != h1

    def test_same_seed_same_values(self):
        a, b = HashFamily(seed=5), HashFamily(seed=5)
        assert [a.hash(2, k) for k in range(50)] == [
            b.hash(2, k) for k in range(50)
        ]

    def test_different_seed_different_values(self):
        a, b = HashFamily(seed=5), HashFamily(seed=6)
        assert [a.hash(0, k) for k in range(50)] != [
            b.hash(0, k) for k in range(50)
        ]

    def test_bucket_range(self):
        family = HashFamily()
        for k in range(500):
            assert 0 <= family.bucket(0, k, 13) < 13

    def test_buckets_count(self):
        family = HashFamily()
        assert len(list(family.buckets(9, 100, 4))) == 4

    def test_buckets_match_bucket(self):
        family = HashFamily(seed=3)
        expected = [family.bucket(i, 7, 100) for i in range(3)]
        assert list(family.buckets(7, 100, 3)) == expected

    def test_sign_is_pm_one(self):
        family = HashFamily()
        signs = {family.sign(0, k) for k in range(100)}
        assert signs == {-1, 1}

    def test_member_callable_matches(self):
        family = HashFamily(seed=8)
        member = family.member(4)
        assert member(77) == family.hash(4, 77)

    def test_bucket_distribution_roughly_uniform(self):
        family = HashFamily(seed=11)
        counts = [0] * 16
        for k in range(4096):
            counts[family.bucket(0, k, 16)] += 1
        assert max(counts) < 2 * min(counts)
