"""Every code block in docs/TUTORIAL.md must behave exactly as printed."""

from __future__ import annotations

from repro import LTC, LTCConfig


class TestSection1DecrementMechanism:
    def make(self) -> LTC:
        return LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=1.0,
                beta=0.0,
                longtail_replacement=False,
                items_per_period=1000,
            )
        )

    def test_fill_state(self):
        ltc = self.make()
        for _ in range(3):
            ltc.insert(1)
        ltc.insert(2)
        ltc.insert(2)
        assert [(c.key, c.frequency) for c in ltc.cells()] == [(1, 3), (2, 2)]

    def test_newcomer_dropped_then_admitted(self):
        ltc = self.make()
        for _ in range(3):
            ltc.insert(1)
        ltc.insert(2)
        ltc.insert(2)
        ltc.insert(3)
        assert ltc.estimate(2) == (1, 0)
        assert ltc.estimate(3) == (0, 0)
        ltc.insert(3)
        assert ltc.estimate(2) == (0, 0)
        assert ltc.estimate(3) == (1, 0)


class TestSection2LongTailReplacement:
    def test_restored_initial_value(self):
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=3,
                alpha=1.0,
                beta=0.0,
                items_per_period=1000,
            )
        )
        for item, count in [(1, 9), (2, 5), (3, 3)]:
            for _ in range(count):
                ltc.insert(item)
        for _ in range(3):
            ltc.insert(4)
        assert ltc.estimate(4) == (4, 0)


class TestSection3ClockPersistency:
    def test_at_most_one_per_period(self):
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=0.0,
                beta=1.0,
                items_per_period=2,
            )
        )
        for _ in range(3):
            ltc.insert(7)
            ltc.insert(7)
            ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(7) == (6, 3)


class TestSection5Tooling:
    def test_longtail_check_and_plan(self):
        from repro.analysis import (
            is_long_tailed,
            recommend_memory,
            sample_frequencies,
        )
        from repro.streams import network_like

        stream = network_like(
            num_events=10_000, num_distinct=3_000, num_periods=10
        )
        report = is_long_tailed(sample_frequencies(stream.events))
        assert report.long_tailed
        plan = recommend_memory(
            num_distinct=3_000,
            stream_length=10_000,
            skew=report.fit.skew,
            k=100,
            target_rate=0.9,
        )
        assert plan.guaranteed_rate >= 0.9
