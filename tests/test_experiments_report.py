"""ASCII table formatter."""

from __future__ import annotations

from repro.experiments.report import format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "---" in lines[2]
        assert lines[3].index("1") == lines[4].index("2")

    def test_no_title(self):
        table = format_table(["h"], [["x"]])
        assert table.splitlines()[0].startswith("h")

    def test_wide_cells_stretch_columns(self):
        table = format_table(["h"], [["wide-cell-content"]])
        header, sep, row = table.splitlines()
        assert len(sep) >= len("wide-cell-content")

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2
