"""PIE: per-period recording, decoding, and persistency ranking."""

from __future__ import annotations

from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.pie import PIE
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


class TestMechanics:
    def test_periods_recorded(self):
        pie = PIE(cells_per_period=256)
        stream = make_stream([1, 2, 3, 4, 5, 6], num_periods=3)
        stream.run(pie)
        assert pie.periods_recorded == 3

    def test_finalize_idempotent(self):
        pie = PIE(cells_per_period=1024)
        stream = make_stream([1, 1, 2] * 4, num_periods=4)
        stream.run(pie)
        first = pie.query(1)
        pie.finalize()
        assert pie.query(1) == first

    def test_duplicates_within_period_count_once(self):
        pie = PIE(cells_per_period=4096)
        stream = make_stream([7] * 30, num_periods=3)
        stream.run(pie)
        # Either decoded (≤ 3) or missed in some periods — never above T.
        assert pie.query(7) <= 3

    def test_never_overestimates_persistency(self):
        """Verified decoding cannot credit an item for a period it missed."""
        events = []
        # Item 1 in all 5 periods; items 100+i only in period i.
        for p in range(5):
            events.extend([1, 100 + p, 100 + p])
        pie = PIE(cells_per_period=4096)
        stream = make_stream(events, num_periods=5)
        truth = GroundTruth(stream)
        stream.run(pie)
        for item in truth.items():
            assert pie.query(item) <= truth.persistency(item)

    def test_from_memory(self):
        pie = PIE.from_memory(MemoryBudget(kb(4)))
        assert pie.cells_per_period == kb(4) // 4


class TestAccuracy:
    def test_detects_persistent_item_with_ample_memory(self):
        events = []
        for p in range(10):
            events.append(1)
            events.extend(range(1000 + 10 * p, 1000 + 10 * p + 5))
        pie = PIE(cells_per_period=4096)
        stream = make_stream(events, num_periods=10)
        stream.run(pie)
        # With huge per-period filters nearly every period decodes.
        assert pie.query(1) >= 6

    def test_topk_ranks_persistent_items_first(self, small_zipf, small_zipf_truth):
        pie = PIE(cells_per_period=8192)
        small_zipf.run(pie)
        exact = small_zipf_truth.top_k_items(30, 0.0, 1.0)
        reported = {r.item for r in pie.top_k(30)}
        assert len(reported & exact) / 30 >= 0.5

    def test_accuracy_improves_with_memory(self, small_zipf, small_zipf_truth):
        def precision_at(cells: int) -> float:
            pie = PIE(cells_per_period=cells)
            small_zipf.run(pie)
            exact = small_zipf_truth.top_k_items(30, 0.0, 1.0)
            reported = {r.item for r in pie.top_k(30)}
            return len(reported & exact) / 30

        assert precision_at(4096) >= precision_at(256)
