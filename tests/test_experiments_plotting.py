"""Text chart rendering."""

from __future__ import annotations

import pytest

from repro.experiments.plotting import bar_chart, series_grid


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        line_a, line_b = chart.splitlines()
        assert line_a.count("█") == 10
        assert line_b.count("█") == 5

    def test_title(self):
        chart = bar_chart(["a"], [1.0], title="T")
        assert chart.splitlines()[0] == "T"

    def test_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "█" not in chart

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestSeriesGrid:
    def test_basic_render(self):
        grid = series_grid(
            [2, 4, 8],
            {"LTC": [0.9, 0.95, 1.0], "SS": [0.5, 0.7, 0.9]},
            height=5,
        )
        assert "o=LTC" in grid
        assert "x=SS" in grid
        assert "high" in grid and "low" in grid

    def test_highest_value_on_top_row(self):
        grid = series_grid([1, 2], {"s": [0.0, 1.0]}, height=4)
        rows = grid.splitlines()[1:5]  # grid body (no title: header is line 0)
        assert "o" in rows[0]  # max value on the top row
        assert "o" in rows[-1]  # min value on the bottom row

    def test_log_scale(self):
        grid = series_grid(
            [1, 2], {"are": [0.001, 100.0]}, height=4, log_scale=True
        )
        assert "log10" in grid

    def test_log_scale_handles_zero(self):
        grid = series_grid([1, 2], {"a": [0.0, 10.0]}, height=4, log_scale=True)
        assert "low" in grid

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            series_grid([1], {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            series_grid([1, 2], {"a": [1.0]})

    def test_overlap_marker(self):
        grid = series_grid([1], {"a": [5.0], "b": [5.0]}, height=3)
        assert "*" in grid
