"""Memory budget sizing rules (paper §V-C accounting)."""

from __future__ import annotations

import pytest

from repro.metrics.memory import (
    COUNTER_CELL_BYTES,
    HEAP_ENTRY_BYTES,
    LTC_CELL_BYTES,
    STBF_CELL_BYTES,
    MemoryBudget,
    kb,
)


class TestKb:
    def test_kilobyte(self):
        assert kb(1) == 1024

    def test_fractional(self):
        assert kb(0.5) == 512


class TestBudget:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_ltc_buckets(self):
        budget = MemoryBudget(kb(12))
        # 12KB / 12B = 1024 cells → 128 buckets of 8.
        assert budget.ltc_buckets(8) == 1024 // 8
        assert LTC_CELL_BYTES == 12

    def test_counter_cells(self):
        assert MemoryBudget(kb(8)).counter_cells() == kb(8) // COUNTER_CELL_BYTES

    def test_sketch_width_reserves_heap(self):
        budget = MemoryBudget(kb(8))
        width_with_heap = budget.sketch_width(rows=3, heap_k=100)
        width_without = budget.sketch_width(rows=3, heap_k=0)
        assert width_with_heap < width_without
        reserved = 100 * HEAP_ENTRY_BYTES
        assert width_with_heap == (budget.total_bytes - reserved) // 4 // 3

    def test_sketch_width_never_below_one(self):
        assert MemoryBudget(16).sketch_width(rows=3, heap_k=1000) >= 1

    def test_split(self):
        halves = MemoryBudget(1000).split(0.5, 0.5)
        assert [b.total_bytes for b in halves] == [500, 500]

    def test_split_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            MemoryBudget(1000).split(0.5, 0.6)

    def test_halves(self):
        a, b = MemoryBudget(1000).halves()
        assert a.total_bytes == b.total_bytes == 500

    def test_bloom_bits(self):
        assert MemoryBudget(kb(1)).bloom_bits() == 8192

    def test_stbf_cells(self):
        assert MemoryBudget(400).stbf_cells() == 400 // STBF_CELL_BYTES

    def test_scaling(self):
        assert (MemoryBudget(100) * 3).total_bytes == 300
        assert (2 * MemoryBudget(100)).total_bytes == 200

    def test_str(self):
        assert str(MemoryBudget(kb(50))) == "50KB"
