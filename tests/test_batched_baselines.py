"""Every baseline's ``insert_many`` ≡ per-event ``insert``, state for state.

The PR-4 batched baseline engine gives every comparison summary a
vectorised (or run-folded) batch fast path.  Correctness bar: not just
equal reports, but *bit-identical internal state* after the batch — the
same evictions must happen on any future suffix.  Each test drives one
copy per event and one copy through whole-period ``insert_many`` batches
(``PeriodicStream.run(batched=True)``) and compares full internals:
counter dicts in insertion order, linked-list bucket order for
Space-Saving, sketch tables, heap arrays + index, Bloom filter bits and
STBF cell arrays.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combined.two_structure import TwoStructureSignificant
from repro.membership.bloom import BloomFilter
from repro.membership.stbf import SpaceTimeBloomFilter
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.persistent.small_space import SmallSpacePersistent
from repro.persistent.ss_persistent import SpaceSavingPersistent
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK
from repro.streams.synthetic import zipf_stream
from repro.summaries.base import StreamSummary, expand_counts
from repro.summaries.frequent import Frequent
from repro.summaries.lossy_counting import LossyCounting
from repro.summaries.space_saving import SpaceSaving

# --------------------------------------------------------- state capture


def heap_state(heap):
    return (list(heap._items), list(heap._values), dict(heap._pos))


def bloom_state(bloom):
    return (bytes(bloom._bits), bloom._inserted)


def stbf_state(stbf):
    return (list(stbf._states), list(stbf._fps), list(stbf._symbols))


def state_of(summary):
    """Full internal state of any comparison summary, order included."""
    if isinstance(summary, SpaceSaving):
        table = summary._summary
        return (
            [(i, c, table.error_of(i)) for i, c in table.items()],
            table.check_invariant(),
        )
    if isinstance(summary, Frequent):
        return (list(summary._counters.items()), summary.decrements)
    if isinstance(summary, LossyCounting):
        return (
            list(summary._entries.items()),
            summary._seen,
            summary._bucket_id,
        )
    if isinstance(summary, SketchTopK):
        return (summary.sketch._tables, heap_state(summary.heap))
    if isinstance(summary, SpaceSavingPersistent):
        return (state_of(summary._ss), bloom_state(summary.bloom))
    if isinstance(summary, SketchPersistent):
        return (
            summary.sketch._tables,
            bloom_state(summary.bloom),
            heap_state(summary.heap),
        )
    if isinstance(summary, PIE):
        return (
            [stbf_state(f) for f in summary._filters],
            stbf_state(summary._current),
            list(summary._persistency.items()),
            sorted(summary._seen_this_period),
        )
    if isinstance(summary, SmallSpacePersistent):
        return (
            list(summary._freq.items()),
            list(summary._pers.items()),
            summary._threshold,
            sorted(summary._seen_this_period),
        )
    if isinstance(summary, TwoStructureSignificant):
        return (
            summary.freq_sketch._tables,
            summary.pers_sketch._tables,
            bloom_state(summary.bloom),
            heap_state(summary.heap),
        )
    raise TypeError(f"no state dispatch for {type(summary).__name__}")


BUDGET = MemoryBudget(kb(4))


def lineup(period_length):
    """One factory per batch-path family, sized small enough to churn."""
    return {
        "SS": lambda: SpaceSaving.from_memory(BUDGET),
        "Freq": lambda: Frequent.from_memory(BUDGET),
        "LC": lambda: LossyCounting.from_memory(BUDGET),
        "CM-topk": lambda: SketchTopK.from_memory(CountMinSketch, BUDGET, 32),
        "CU-topk": lambda: SketchTopK.from_memory(CUSketch, BUDGET, 32),
        "Count-topk": lambda: SketchTopK.from_memory(CountSketch, BUDGET, 32),
        "SS+BF": lambda: SpaceSavingPersistent.from_memory(
            BUDGET, expected_per_period=period_length
        ),
        "CM+BF": lambda: SketchPersistent.from_memory(
            CountMinSketch, BUDGET, 32, expected_per_period=period_length
        ),
        "PIE": lambda: PIE.from_memory(BUDGET),
        "SmallSpace": lambda: SmallSpacePersistent(
            capacity=48, sample_rate=0.4
        ),
        "CU+CU": lambda: TwoStructureSignificant.from_memory(
            CUSketch, BUDGET, 32, 1.0, 1.0
        ),
    }


FAMILY_IDS = sorted(lineup(1))


# ------------------------------------------------- stream-level identity


class TestBatchedRunIdentity:
    """Whole-period batches across the skew × period-count grid."""

    @pytest.mark.parametrize("name", FAMILY_IDS)
    @pytest.mark.parametrize("num_periods", [3, 7])
    @pytest.mark.parametrize("skew", [0.5, 1.0, 1.5])
    def test_state_identical_across_grid(self, name, skew, num_periods):
        stream = zipf_stream(
            num_events=3_000,
            num_distinct=400,
            skew=skew,
            num_periods=num_periods,
            seed=int(skew * 10) + num_periods,
        )
        factory = lineup(stream.period_length)[name]
        one, many = factory(), factory()
        stream.run(one)
        stream.run(many, batched=True)
        assert state_of(one) == state_of(many)
        assert one.reported_pairs(32) == many.reported_pairs(32)

    @pytest.mark.parametrize("name", FAMILY_IDS)
    def test_state_identical_mid_period(self, name):
        """Batches that straddle no boundary (chunked finer than periods)."""
        stream = zipf_stream(
            num_events=2_000, num_distinct=300, skew=1.0, num_periods=4, seed=3
        )
        factory = lineup(stream.period_length)[name]
        one, many = factory(), factory()
        rng = random.Random(17)
        for period in stream.iter_periods():
            for item in period:
                one.insert(item)
            i = 0
            while i < len(period):
                j = min(len(period), i + rng.randrange(1, 200))
                many.insert_many(period[i:j])
                i = j
            for summary in (one, many):
                end = getattr(summary, "end_period", None)
                if end is not None:
                    end()
        assert state_of(one) == state_of(many)


# ----------------------------------------------- property-based chunking

COUNTERS = [
    ("SS", lambda: SpaceSaving(capacity=8)),
    ("Freq", lambda: Frequent(capacity=8)),
    ("LC", lambda: LossyCounting(capacity=8, epsilon=1.0 / 7)),
    ("SmallSpace", lambda: SmallSpacePersistent(capacity=6, sample_rate=0.8)),
]


@pytest.mark.parametrize(
    "factory", [f for _, f in COUNTERS], ids=[n for n, _ in COUNTERS]
)
class TestArbitraryChunking:
    @given(
        events=st.lists(st.integers(0, 30), max_size=250),
        boundaries=st.lists(st.integers(0, 250), max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_chunking_matches_per_event(self, factory, events, boundaries):
        one, many = factory(), factory()
        for item in events:
            one.insert(item)
        prev = 0
        for b in sorted(set(boundaries)):
            if 0 < b < len(events):
                many.insert_many(events[prev:b])
                prev = b
        many.insert_many(events[prev:])
        assert state_of(one) == state_of(many)

    def test_accepts_iterators_and_empty(self, factory):
        one, many = factory(), factory()
        events = [1, 2, 1, 3, 1, 2, 4, 1, 1, 5]
        for item in events:
            one.insert(item)
        many.insert_many([])
        many.insert_many(iter(events))
        assert state_of(one) == state_of(many)


# ------------------------------------------------------ weighted batches


class TestCounts:
    def test_expand_counts(self):
        assert expand_counts([5, 7, 5], [2, 0, 3]) == [5, 5, 5, 5, 5]
        assert expand_counts([], []) == []

    def test_expand_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            expand_counts([1], [-1])

    @pytest.mark.parametrize("name", FAMILY_IDS)
    def test_counts_equal_repeated_inserts(self, name):
        rng = random.Random(29)
        items = [rng.randrange(40) for _ in range(120)]
        counts = [rng.randrange(0, 4) for _ in items]
        factory = lineup(64)[name]
        one, many = factory(), factory()
        for item, count in zip(items, counts):
            for _ in range(count):
                one.insert(item)
        many.insert_many(items, counts=counts)
        assert state_of(one) == state_of(many)

    def test_default_base_implementation_honours_counts(self):
        class Recorder(StreamSummary):
            def __init__(self):
                self.seen = []

            def insert(self, item):
                self.seen.append(item)

            def query(self, item):
                return 0.0

            def top_k(self, k):
                return []

        rec = Recorder()
        rec.insert_many([3, 9], counts=[2, 1])
        rec.insert_many(iter([4]))
        assert rec.seen == [3, 3, 9, 4]
        with pytest.raises(ValueError):
            rec.insert_many([1], counts=[-2])


# -------------------------------------------------- numpy-less fallbacks

FALLBACK_MODULES = {
    "bloom": ("repro.membership.bloom", "SS+BF"),
    "stbf": ("repro.membership.stbf", "PIE"),
    "small_space": ("repro.persistent.small_space", "SmallSpace"),
    "pie": ("repro.persistent.pie", "PIE"),
    "count_min": ("repro.sketches.count_min", "CM-topk"),
    "cu": ("repro.sketches.cu", "CU-topk"),
    "count_sketch": ("repro.sketches.count_sketch", "Count-topk"),
}


class TestNumpyFallback:
    @pytest.mark.parametrize(
        "module_name,family",
        FALLBACK_MODULES.values(),
        ids=list(FALLBACK_MODULES),
    )
    def test_pure_python_loop_matches(self, module_name, family, monkeypatch):
        module = __import__(module_name, fromlist=["numpy_available"])
        monkeypatch.setattr(module, "numpy_available", lambda: False)
        stream = zipf_stream(
            num_events=1_500, num_distinct=250, skew=1.0, num_periods=3, seed=8
        )
        factory = lineup(stream.period_length)[family]
        one, many = factory(), factory()
        stream.run(one)
        stream.run(many, batched=True)
        assert state_of(one) == state_of(many)


# -------------------------------------------------------- membership unit


class TestMembershipBatches:
    def test_bloom_insert_if_absent_many_matches_sequential(self):
        rng = random.Random(4)
        keys = [rng.randrange(60) for _ in range(400)]
        one = BloomFilter(num_bits=256, num_hashes=3, seed=9)
        many = BloomFilter(num_bits=256, num_hashes=3, seed=9)
        expected = [one.insert_if_absent(k) for k in keys]
        assert many.insert_if_absent_many(keys) == expected
        assert bloom_state(one) == bloom_state(many)

    def test_bloom_clear_resets_bits(self):
        bloom = BloomFilter(num_bits=128, num_hashes=2, seed=1)
        bloom.insert_if_absent_many(list(range(50)))
        bloom.clear()
        assert not any(bloom._bits)
        assert len(bloom._bits) == 128 // 8

    def test_bloom_empty_batch(self):
        bloom = BloomFilter(num_bits=64, num_hashes=2, seed=1)
        assert bloom.insert_if_absent_many([]) == []

    @staticmethod
    def make_stbf(num_cells, num_hashes, seed):
        from repro.codes.raptor import RaptorCode

        return SpaceTimeBloomFilter(
            num_cells=num_cells,
            code=RaptorCode(seed=7),
            num_hashes=num_hashes,
            seed=seed,
        )

    def test_stbf_insert_many_matches_sequential(self):
        rng = random.Random(12)
        items = [rng.randrange(80) for _ in range(500)]
        one = self.make_stbf(64, 3, 5)
        many = self.make_stbf(64, 3, 5)
        for item in items:
            one.insert(item)
        many.insert_many(items)
        assert stbf_state(one) == stbf_state(many)

    def test_stbf_first_occurrence_order_preserved(self):
        """Collided cells keep the *first* writer's fp/symbol residue, so
        batch dedup must keep first-occurrence order, not sorted order."""
        items = [9, 2, 9, 2, 5, 9, 5, 1]
        one = self.make_stbf(4, 2, 3)
        many = self.make_stbf(4, 2, 3)
        for item in items:
            one.insert(item)
        many.insert_many(items)
        assert stbf_state(one) == stbf_state(many)


# ------------------------------------------------------ runner + CLI mode


class TestRunnerBatchedMode:
    def make(self):
        from repro.experiments.configs import (
            default_algorithms_frequent,
            default_algorithms_persistent,
            default_algorithms_significant,
        )

        stream = zipf_stream(
            num_events=3_000, num_distinct=400, skew=1.0, num_periods=5, seed=6
        )
        factories = {}
        factories.update(default_algorithms_frequent(BUDGET, stream, 20))
        for maker in (default_algorithms_persistent,):
            for name, f in maker(BUDGET, stream, 20).items():
                factories[f"p:{name}"] = f
        for name, f in default_algorithms_significant(
            BUDGET, stream, 20, 1.0, 1.0
        ).items():
            factories[f"s:{name}"] = f
        return stream, factories

    def test_run_and_evaluate_batched_identical(self):
        from repro.experiments.runner import run_and_evaluate
        from repro.streams.ground_truth import GroundTruth

        stream, factories = self.make()
        truth = GroundTruth(stream)
        plain = run_and_evaluate(factories, stream, 20, 1.0, 1.0, truth=truth)
        batched = run_and_evaluate(
            factories, stream, 20, 1.0, 1.0, truth=truth, batched=True
        )
        assert batched == plain

    def test_metered_batched_identical(self):
        """The obs-enabled runner path feeds insert_many too."""
        from repro import obs
        from repro.experiments.runner import run_and_evaluate
        from repro.streams.ground_truth import GroundTruth

        stream, factories = self.make()
        truth = GroundTruth(stream)
        try:
            obs.enable()
            plain = run_and_evaluate(
                factories, stream, 20, 1.0, 1.0, truth=truth
            )
            obs.enable()
            batched = run_and_evaluate(
                factories, stream, 20, 1.0, 1.0, truth=truth, batched=True
            )
        finally:
            obs.disable()
        assert batched == plain

    def test_measure_throughput_batched_mode_label(self):
        from repro.metrics.throughput import measure_throughput

        stream = zipf_stream(
            num_events=500, num_distinct=100, skew=1.0, num_periods=2, seed=2
        )
        result = measure_throughput(
            lambda: SpaceSaving.from_memory(BUDGET),
            stream,
            name="SS",
            batched=True,
        )
        assert result.mode == "batched"
        assert result.events == len(stream)
