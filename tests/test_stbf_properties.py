"""Property-based tests for the Space-Time Bloom Filter and PIE."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.raptor import RaptorCode
from repro.membership.stbf import SpaceTimeBloomFilter
from repro.persistent.pie import PIE
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream

items_strategy = st.lists(st.integers(0, 2**32 - 1), max_size=120)


def build_stbf(items, num_cells=512, seed=1):
    stbf = SpaceTimeBloomFilter(
        num_cells=num_cells, code=RaptorCode(seed=7), num_hashes=3, seed=seed
    )
    for item in items:
        stbf.insert(item)
    return stbf


class TestSTBFProperties:
    @given(items_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives(self, items):
        stbf = build_stbf(items)
        assert all(stbf.might_contain(i & 0xFFFFFFFF) for i in items)

    @given(items_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_accounting(self, items):
        stbf = build_stbf(items)
        empty, occupied, collided = stbf.occupancy
        assert empty + occupied + collided == stbf.num_cells
        if not items:
            assert occupied == collided == 0

    @given(items_strategy)
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_irrelevant(self, items):
        forward = build_stbf(items)
        backward = build_stbf(list(reversed(items)))
        # Cell states are order-independent: the same item set always
        # produces the same singleton/collided classification.
        assert [forward.state_of(c) for c in range(forward.num_cells)] == [
            backward.state_of(c) for c in range(backward.num_cells)
        ]

    @given(items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_singletons_decode_to_inserted_items(self, items):
        """Any id recovered from a period's singletons (with verification)
        must be an item actually inserted in that period."""
        stbf = build_stbf(items)
        inserted = {i & 0xFFFFFFFF for i in items}
        by_fp = {}
        for cell, fp, symbol in stbf.singletons():
            by_fp.setdefault(fp, []).append((cell, symbol))
        for fp, symbols in by_fp.items():
            decoded = stbf.code.decode(symbols)
            if decoded is None:
                continue
            decoded &= 0xFFFFFFFF
            if stbf.fingerprint(decoded) == fp and stbf.might_contain(decoded):
                assert decoded in inserted


class TestPIEProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=200),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistency_never_overestimated(self, events, periods):
        periods = min(periods, len(events))
        stream = make_stream(events, num_periods=periods)
        truth = GroundTruth(stream)
        pie = PIE(cells_per_period=1024)
        stream.run(pie)
        for item in set(events):
            assert pie.query(item) <= truth.persistency(item)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_reported_items_are_real(self, events):
        stream = make_stream(events, num_periods=min(3, len(events)))
        pie = PIE(cells_per_period=1024)
        stream.run(pie)
        universe = set(events)
        for report in pie.top_k(50):
            assert report.item in universe
