"""WindowedLTC: sliding-window significance (extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windowed import WindowedLTC
from repro.metrics.memory import MemoryBudget, kb
from tests.conftest import make_stream


def fresh(window=4, w=2, d=4, alpha=0.0, beta=1.0, decay=None) -> WindowedLTC:
    return WindowedLTC(
        num_buckets=w,
        window=window,
        bucket_width=d,
        alpha=alpha,
        beta=beta,
        decay=decay,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_buckets=0, window=4),
            dict(num_buckets=1, window=0),
            dict(num_buckets=1, window=33),
            dict(num_buckets=1, window=4, alpha=0.0, beta=0.0),
            dict(num_buckets=1, window=4, decay=1.5),
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            WindowedLTC(**kwargs)

    def test_from_memory(self):
        wltc = WindowedLTC.from_memory(MemoryBudget(kb(12)), window=8)
        assert len(wltc._keys) == (1024 // 8) * 8


class TestWindowSemantics:
    def test_persistency_counts_window_periods(self):
        wltc = fresh(window=4)
        for _ in range(3):  # present in 3 consecutive periods
            wltc.insert(9)
            wltc.end_period()
        _, p = wltc.estimate(9)
        assert p == 3

    def test_old_periods_fall_out(self):
        wltc = fresh(window=2, decay=1.0)
        wltc.insert(9)
        wltc.end_period()  # period 0 recorded
        for _ in range(3):  # absent for 3 periods
            wltc.insert(1)  # keep another cell alive
            wltc.end_period()
        _, p = wltc.estimate(9)
        assert p == 0

    def test_full_window_saturates(self):
        """The ring covers the current period plus W−1 completed ones, so
        the saturated count is W right after an insert and W−1 right
        after a boundary (the fresh current period is still empty)."""
        wltc = fresh(window=3)
        for _ in range(10):
            wltc.insert(9)
            wltc.end_period()
        _, p = wltc.estimate(9)
        assert p == 2
        wltc.insert(9)
        _, p = wltc.estimate(9)
        assert p == 3

    def test_silent_item_eventually_dropped(self):
        """Frequency-weighted mode: the dead-cell sweep reclaims cells
        whose ring aged out and whose frequency decayed to noise."""
        wltc = fresh(window=2, alpha=1.0, beta=1.0, decay=0.5)
        wltc.insert(9)
        for _ in range(8):
            wltc.end_period()
        assert wltc.estimate(9) == (0.0, 0)
        assert len(wltc) == 0

    def test_persistency_only_keeps_aged_cell(self):
        """Regression: with ``alpha == 0`` the sweep must not evict on
        the frequency test — a cell whose ring just aged to 0 stays
        tracked (at significance 0) instead of losing its history."""
        wltc = fresh(window=2, alpha=0.0, beta=1.0, decay=0.5)
        wltc.insert(9)
        for _ in range(8):
            wltc.end_period()
        assert len(wltc) == 1
        freq, persistency = wltc.estimate(9)
        assert persistency == 0
        assert freq > 0.0  # decayed history survives the sweep
        # Reappearing rebuilds windowed persistency in place (a hit, not
        # a fresh claim: the decayed frequency keeps accumulating).
        wltc.insert(9)
        freq_after, persistency_after = wltc.estimate(9)
        assert persistency_after == 1
        assert freq_after == pytest.approx(freq + 1.0)

    def test_persistency_only_aged_cell_is_first_victim(self):
        """The kept zero-significance cell does not clog its bucket: a
        bucket-full miss replaces it immediately."""
        wltc = WindowedLTC(
            num_buckets=1, window=2, bucket_width=2,
            alpha=0.0, beta=1.0, decay=0.5,
        )
        wltc.insert(9)
        for _ in range(4):
            wltc.end_period()  # ring of 9 ages to 0; cell kept
        wltc.insert(1)  # second cell
        wltc.insert(2)  # bucket full; 9 has significance 0 -> replaced
        assert wltc.estimate(9) == (0.0, 0)
        assert wltc.estimate(2)[1] == 1

    def test_frequency_decays(self):
        wltc = fresh(window=4, alpha=1.0, beta=0.0, decay=0.5)
        for _ in range(8):
            wltc.insert(9)
        wltc.end_period()
        f, _ = wltc.estimate(9)
        assert f == pytest.approx(4.0)


class TestRecencyRanking:
    def test_recent_item_outranks_stale_item(self):
        """The motivating behaviour: a flow persistent long ago decays
        below a flow persistent right now."""
        wltc = fresh(window=4, w=4, d=4, alpha=0.0, beta=1.0)
        # Item 1 active periods 0-3, then silent; item 2 active 4-7.
        for _ in range(4):
            wltc.insert(1)
            wltc.end_period()
        for _ in range(4):
            wltc.insert(2)
            wltc.end_period()
        top = [r.item for r in wltc.top_k(2)]
        assert top[0] == 2

    def test_whole_stream_ltc_would_tie_them(self):
        from repro.core.config import LTCConfig
        from repro.core.ltc import LTC

        events = [1, 1, 1, 1, 2, 2, 2, 2]
        ltc = LTC(
            LTCConfig(
                num_buckets=4, bucket_width=4, alpha=0.0, beta=1.0,
                items_per_period=1,
            )
        )
        make_stream(events, num_periods=8).run(ltc)
        assert ltc.estimate(1)[1] == ltc.estimate(2)[1] == 4


class TestEviction:
    def test_full_bucket_decrements_weakest(self):
        wltc = fresh(window=4, w=1, d=2, alpha=1.0, beta=0.0)
        for _ in range(3):
            wltc.insert(1)
        wltc.insert(2)
        wltc.insert(3)  # decrement item 2 → takes its cell on zero
        f3, _ = wltc.estimate(3)
        assert f3 == 1.0
        assert wltc.estimate(2) == (0.0, 0)

    @given(st.lists(st.integers(0, 20), max_size=200), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_structural_invariants(self, events, periods):
        wltc = fresh(window=4, w=2, d=3, alpha=1.0, beta=1.0)
        if events:
            stream = make_stream(events, num_periods=min(periods, len(events)))
            stream.run(wltc)
        for j, key in enumerate(wltc._keys):
            assert wltc._freqs[j] >= 0.0
            assert 0 <= wltc._rings[j] < (1 << 4)
            if key is None:
                continue
        top = wltc.top_k(5)
        sigs = [r.significance for r in top]
        assert sigs == sorted(sigs, reverse=True)
