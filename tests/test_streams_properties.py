"""Property-based tests of the periodic stream model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.model import PeriodicStream

streams = st.builds(
    lambda events, periods: PeriodicStream(
        events=events, num_periods=min(periods, len(events))
    ),
    st.lists(st.integers(0, 100), min_size=1, max_size=300),
    st.integers(1, 20),
)


class TestPartitionProperties:
    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_periods_partition_events(self, stream):
        flattened = [item for period in stream.iter_periods() for item in period]
        assert flattened == stream.events

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_period_count(self, stream):
        assert len(list(stream.iter_periods())) == stream.num_periods

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_period_of_matches_iteration(self, stream):
        index = 0
        for period_number, period in enumerate(stream.iter_periods()):
            for _ in period:
                assert stream.period_of(index) == period_number
                index += 1

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_all_periods_nonempty(self, stream):
        assert all(len(period) >= 1 for period in stream.iter_periods())

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_only_last_period_oversized(self, stream):
        sizes = [len(p) for p in stream.iter_periods()]
        n = stream.period_length
        assert all(size == n for size in sizes[:-1])
        assert sizes[-1] >= n

    @given(streams, st.integers(1, 300))
    @settings(max_examples=100, deadline=None)
    def test_head_invariants(self, stream, cut):
        head = stream.head(cut)
        assert len(head) == min(cut, len(stream))
        assert 1 <= head.num_periods <= max(stream.num_periods, 1)
        assert head.events == stream.events[: len(head)]

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_stats_consistency(self, stream):
        stats = stream.stats
        assert stats.num_events == len(stream)
        assert stats.num_distinct == len(set(stream.events))
        assert stats.num_periods == stream.num_periods
