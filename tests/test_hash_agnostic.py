"""Hash-robustness: results do not hinge on one lucky hash function.

The library defaults to the splitmix64 family for speed but ships Bob Hash
for fidelity; accuracy must be a property of the algorithms, not of a
specific seed or function.
"""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.hashing.bobhash import BobHash
from repro.hashing.family import HashFamily
from repro.metrics.accuracy import precision
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream


@pytest.fixture(scope="module")
def workload():
    stream = zipf_stream(
        num_events=15_000, num_distinct=3_000, skew=1.0, num_periods=15, seed=21
    )
    return stream, GroundTruth(stream)


class TestSeedRobustness:
    def test_ltc_precision_stable_across_seeds(self, workload):
        stream, truth = workload
        exact = truth.top_k_items(100, 1.0, 0.0)
        precisions = []
        for seed in (1, 0xDEAD, 0xBEEF, 12345):
            ltc = LTC(
                LTCConfig(
                    num_buckets=64,
                    bucket_width=8,
                    alpha=1.0,
                    beta=0.0,
                    items_per_period=stream.period_length,
                    seed=seed,
                )
            )
            stream.run(ltc)
            precisions.append(
                precision((r.item for r in ltc.top_k(100)), exact)
            )
        assert min(precisions) >= 0.9
        assert max(precisions) - min(precisions) <= 0.1


class TestHashEquivalence:
    def test_bobhash_and_splitmix_bucket_distributions_match(self):
        """Both hashes spread a key population over buckets equally well
        (max/min bucket-load ratio)."""
        keys = list(range(20_000))
        n = 64

        bob = BobHash(seed=3)
        family = HashFamily(seed=3)

        def spread(bucket_of) -> float:
            counts = [0] * n
            for key in keys:
                counts[bucket_of(key)] += 1
            return max(counts) / min(counts)

        assert spread(lambda k: bob.bucket(k, n)) < 1.5
        assert spread(lambda k: family.bucket(0, k, n)) < 1.5

    def test_both_usable_as_ltc_bucket_hash(self, workload):
        """An LTC variant re-bucketed by Bob Hash achieves the same
        accuracy class as the default splitmix bucketing."""
        stream, truth = workload
        exact = truth.top_k_items(100, 1.0, 0.0)

        class BobLTC(LTC):
            """LTC with the bucket hash swapped to Bob Hash."""

            def __init__(self, config):
                super().__init__(config)
                self._bob = BobHash(seed=7)

            def _place(self, item):
                # Redirect bucketing through Bob Hash by pre-permuting the
                # key: _place hashes splitmix64(key ^ seed), which is a
                # bijection, so feeding bob(item) yields Bob-driven buckets.
                super()._place(self._bob(item))

            def estimate(self, item):
                return super().estimate(self._bob(item))

        config = LTCConfig(
            num_buckets=64,
            bucket_width=8,
            alpha=1.0,
            beta=0.0,
            items_per_period=stream.period_length,
        )
        bob_ltc = BobLTC(config)
        for period in stream.iter_periods():
            for item in period:
                bob_ltc.insert(item)
            bob_ltc.end_period()
        bob_ltc.finalize()

        # Rank by querying the true top items (ids were permuted inside).
        hits = sum(1 for item in exact if bob_ltc.query(item) > 0)
        assert hits / len(exact) >= 0.9
