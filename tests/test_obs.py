"""repro.obs: registry semantics, null-registry no-ops, exporters, and
the must-not-change-results differential guarantee."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.obs.registry import MetricsRegistry, NullRegistry, _NULL_METRIC
from tests.conftest import make_stream


@pytest.fixture(autouse=True)
def obs_disabled_after():
    """Every test leaves the process-global flag in the default state."""
    yield
    obs.disable()


def fresh_registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = fresh_registry().counter("c", "help")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative(self):
        c = fresh_registry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = fresh_registry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12
        g.inc(-12)
        assert g.value == 0


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = fresh_registry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 9.0):
            h.observe(v)
        # le semantics: 1.0 belongs to the le="1.0" bucket.
        assert h.counts == [2, 1, 0, 1]
        assert h.cumulative() == [(1.0, 2), (2.0, 3), (5.0, 3), (float("inf"), 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(12.0)

    def test_rejects_bad_boundaries(self):
        reg = fresh_registry()
        with pytest.raises(ValueError):
            reg.histogram("h1", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h3", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = fresh_registry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g", labels={"site": "1"}) is reg.gauge(
            "g", labels={"site": "1"}
        )
        assert reg.gauge("g", labels={"site": "1"}) is not reg.gauge(
            "g", labels={"site": "2"}
        )

    def test_type_conflicts_rejected(self):
        reg = fresh_registry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        with pytest.raises(ValueError):
            reg.gauge("m", labels={"a": "b"})

    def test_snapshot_is_json_safe_and_sorted(self):
        reg = fresh_registry()
        reg.counter("z").inc()
        reg.gauge("a").set(1)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert [m["name"] for m in snap["metrics"]] == ["a", "z"]


class TestNullRegistry:
    def test_shared_noop_singletons(self):
        null = NullRegistry()
        c = null.counter("anything")
        assert c is null.gauge("other") is null.histogram("third")
        assert c is _NULL_METRIC
        # Every mutator is a no-op, never an error.
        c.inc()
        c.inc(10)
        c.dec()
        c.set(3)
        c.observe(1.5)
        assert null.snapshot() == {"metrics": []}
        assert null.metrics() == []
        assert not null.enabled

    def test_module_flag_default_off(self):
        obs.disable()
        assert not obs.is_enabled()
        assert isinstance(obs.registry(), NullRegistry)

    def test_enable_installs_fresh_registry(self):
        first = obs.enable()
        first.counter("c").inc()
        second = obs.enable()
        assert second is not first
        assert second.snapshot() == {"metrics": []}
        assert obs.enable(first) is first  # explicit registry accumulates


GOLDEN_EXPOSITION = """\
# HELP demo_events_total Events seen
# TYPE demo_events_total counter
demo_events_total 3
demo_events_total{shard="1"} 2
# HELP demo_lag_seconds Lag behind the stream head
# TYPE demo_lag_seconds gauge
demo_lag_seconds 1.5
# HELP demo_latency_seconds Request latency
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="1"} 2
demo_latency_seconds_bucket{le="+Inf"} 3
demo_latency_seconds_sum 3.5625
demo_latency_seconds_count 3
"""


class TestExporters:
    def make_registry(self) -> MetricsRegistry:
        reg = fresh_registry()
        reg.counter("demo_events_total", "Events seen").inc(3)
        reg.counter("demo_events_total", "Events seen", labels={"shard": "1"}).inc(2)
        reg.gauge("demo_lag_seconds", "Lag behind the stream head").set(1.5)
        h = reg.histogram(
            "demo_latency_seconds", "Request latency", buckets=(0.1, 1.0)
        )
        # Binary-exact observations keep the golden sum reproducible.
        for v in (0.0625, 0.5, 3.0):
            h.observe(v)
        return reg

    def test_prometheus_golden(self):
        assert obs.export.prometheus_text(self.make_registry()) == GOLDEN_EXPOSITION

    def test_prometheus_from_snapshot_matches_live(self):
        reg = self.make_registry()
        assert obs.export.prometheus_text(reg.snapshot()) == (
            obs.export.prometheus_text(reg)
        )

    def test_json_snapshot_roundtrip(self, tmp_path):
        reg = self.make_registry()
        path = tmp_path / "metrics.json"
        written = obs.export.write_json_snapshot(reg, path)
        loaded = obs.export.load_json_snapshot(path)
        assert loaded == written
        assert "generated_at" in loaded
        assert obs.export.prometheus_text(loaded) == GOLDEN_EXPOSITION

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            obs.export.load_json_snapshot(path)

    def test_snapshot_rows_cover_every_metric(self):
        rows = obs.export.snapshot_rows(self.make_registry())
        assert len(rows) == 4
        assert ("demo_lag_seconds", "gauge", "1.5") in rows


class TestInstrumentedLTC:
    def drive(self, cls, events, periods=4):
        config = LTCConfig(
            num_buckets=2,
            bucket_width=2,
            items_per_period=max(1, len(events) // periods),
        )
        summary = cls(config)
        make_stream(events, num_periods=periods).run(summary)
        summary.finalize()
        return summary

    def test_counters_track_the_stream(self):
        events = [i % 9 for i in range(400)]
        reg = obs.enable()
        self.drive(LTC, events)
        values = {
            m["name"]: m["value"]
            for m in reg.snapshot()["metrics"]
            if m["type"] == "counter"
        }
        assert values["ltc_inserts_total"] == len(events)
        # 9 distinct items over 4 cells: the table must have evicted and
        # decremented, and multi-period flags must have been harvested.
        assert values["ltc_significance_decrements_total"] > 0
        assert values["ltc_evictions_total"] > 0
        assert values["ltc_longtail_replacements_total"] > 0
        assert values["ltc_harvests_total"] > 0

    def test_fast_ltc_batched_counts_match_reference(self):
        events = [i % 9 for i in range(400)]
        reg_ref = obs.enable()
        self.drive(LTC, events)
        ref = {
            m["name"]: m["value"]
            for m in reg_ref.snapshot()["metrics"]
            if m["type"] == "counter"
        }
        reg_fast = obs.enable()
        config = LTCConfig(num_buckets=2, bucket_width=2, items_per_period=100)
        fast = FastLTC(config)
        stream = make_stream(events, num_periods=4)
        stream.run(fast, batched=True)
        fast.finalize()
        fastv = {
            m["name"]: m["value"]
            for m in reg_fast.snapshot()["metrics"]
            if m["type"] == "counter"
        }
        assert fastv == ref

    def test_insert_timed_counts_inserts(self):
        reg = obs.enable()
        ltc = LTC(LTCConfig(num_buckets=2, bucket_width=2, items_per_period=4))
        for t in range(10):
            ltc.insert_timed(t % 3, float(t), period_seconds=2.0)
        values = {
            m["name"]: m["value"]
            for m in reg.snapshot()["metrics"]
            if m["type"] == "counter"
        }
        assert values["ltc_inserts_total"] == 10

    def test_disabled_structures_carry_no_registry(self):
        obs.disable()
        ltc = LTC(LTCConfig(num_buckets=2, bucket_width=2, items_per_period=4))
        assert ltc._obs is None

    def test_differential_top_k_unchanged_by_metrics(self):
        """The headline guarantee: enabling observability changes no
        report — cell for cell, for both engine classes."""
        events = [(i * 7) % 31 for i in range(1_000)]
        for cls in (LTC, FastLTC):
            obs.disable()
            plain = self.drive(cls, events)
            obs.enable()
            metered = self.drive(cls, events)
            assert list(plain.cells()) == list(metered.cells())
            assert plain.top_k(10) == metered.top_k(10)


class TestInstrumentedDistributed:
    def test_coordinator_metrics(self):
        from repro.distributed.coordinator import MergingCoordinator
        from repro.distributed.partition import partition_sharded
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=4_000, num_distinct=300, skew=1.0, num_periods=4, seed=5
        )
        config = LTCConfig(
            num_buckets=32,
            bucket_width=8,
            items_per_period=stream.period_length,
        )
        sites = partition_sharded(stream, 3)
        reg = obs.enable()
        MergingCoordinator(config).run(sites, 20)
        metrics = {m["name"]: m for m in reg.snapshot()["metrics"]}
        assert metrics["coordinator_site_merge_seconds"]["count"] == len(sites)
        assert metrics["coordinator_merge_seconds"]["count"] == 1

    def test_parallel_metrics_including_ipc_gauge(self):
        from repro.distributed.parallel import (
            ParallelMergingCoordinator,
            worker_processes_available,
        )
        from repro.distributed.partition import partition_sharded
        from repro.streams.synthetic import zipf_stream

        if not worker_processes_available():  # pragma: no cover
            pytest.skip("no worker processes on this platform")
        stream = zipf_stream(
            num_events=4_000, num_distinct=300, skew=1.0, num_periods=4, seed=5
        )
        config = LTCConfig(
            num_buckets=32,
            bucket_width=8,
            items_per_period=stream.period_length,
        )
        sites = partition_sharded(stream, 2)
        reg = obs.enable()
        coordinator = ParallelMergingCoordinator(config, max_workers=2)
        report = coordinator.run(sites, 20)
        metrics = {m["name"]: m for m in reg.snapshot()["metrics"]}
        assert metrics["ingest_ipc_bytes"]["value"] == report.ingest_ipc_bytes
        assert report.ingest_ipc_bytes > 0
        assert metrics["coordinator_site_merge_seconds"]["count"] == len(sites)
        assert metrics["coordinator_merge_seconds"]["count"] == 1

    def test_in_process_fallback_reports_zero_ipc(self):
        from repro.distributed.parallel import ParallelMergingCoordinator
        from repro.distributed.partition import partition_sharded
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=4_000, num_distinct=300, skew=1.0, num_periods=4, seed=5
        )
        config = LTCConfig(
            num_buckets=32,
            bucket_width=8,
            items_per_period=stream.period_length,
        )
        sites = partition_sharded(stream, 2)
        reg = obs.enable()
        report = ParallelMergingCoordinator(config, max_workers=1).run(
            sites, 20
        )
        metrics = {m["name"]: m for m in reg.snapshot()["metrics"]}
        # No worker processes -> nothing crosses a pipe; the gauge says so.
        assert report.ingest_ipc_bytes == 0
        assert metrics["ingest_ipc_bytes"]["value"] == 0

    def test_worker_crash_and_retry_counters(self):
        from repro.distributed.parallel import (
            ParallelMergingCoordinator,
            process_pool_available,
        )
        from repro.distributed.partition import partition_sharded
        from repro.streams.synthetic import zipf_stream

        if not process_pool_available():  # pragma: no cover
            pytest.skip("no process pool on this platform")
        stream = zipf_stream(
            num_events=2_000, num_distinct=200, skew=1.0, num_periods=4, seed=5
        )
        config = LTCConfig(
            num_buckets=16,
            bucket_width=8,
            items_per_period=stream.period_length,
        )
        sites = partition_sharded(stream, 2)
        reg = obs.enable()
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=2
        )
        coordinator._crash_plan = {0: 1}  # shard 0 dies on its first attempt
        coordinator.run(sites, 20)
        values = {
            m["name"]: m["value"]
            for m in reg.snapshot()["metrics"]
            if m["type"] == "counter"
        }
        assert values["coordinator_worker_crashes_total"] >= 1
        assert values["coordinator_worker_retries_total"] >= 1


class TestBatchSizeHistogram:
    """PR-4 batch paths record items-per-insert_many, labelled by class."""

    def test_helper_returns_none_when_disabled(self):
        obs.disable()
        assert obs.batch_size_histogram("SpaceSaving") is None

    def test_insert_many_lands_in_histogram(self):
        from repro.summaries.space_saving import SpaceSaving

        reg = obs.enable()
        ss = SpaceSaving(capacity=16)  # built *after* enable: captures it
        ss.insert_many([1, 2, 3, 1])
        ss.insert_many([5] * 10)
        ss.insert_many([], counts=[])
        h = reg.histogram(
            "summary_insert_many_batch_size",
            buckets=obs.DEFAULT_BATCH_SIZE_BUCKETS,
            labels={"summary": "SpaceSaving"},
        )
        assert h.count == 3
        assert h.sum == 4 + 10 + 0

    def test_counts_weighting_observes_expanded_total(self):
        from repro.summaries.frequent import Frequent

        reg = obs.enable()
        freq = Frequent(capacity=8)
        freq.insert_many([1, 2], counts=[3, 4])
        h = reg.histogram(
            "summary_insert_many_batch_size",
            buckets=obs.DEFAULT_BATCH_SIZE_BUCKETS,
            labels={"summary": "Frequent"},
        )
        assert h.count == 1
        assert h.sum == 7

    def test_every_family_labels_its_own_series(self):
        from repro.experiments.configs import (
            default_algorithms_frequent,
            default_algorithms_persistent,
        )
        from repro.metrics.memory import MemoryBudget, kb
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=1_000, num_distinct=200, skew=1.0, num_periods=2, seed=4
        )
        budget = MemoryBudget(kb(4))
        factories = {}
        factories.update(default_algorithms_frequent(budget, stream, 10))
        factories.update(default_algorithms_persistent(budget, stream, 10))
        reg = obs.enable()
        for factory in factories.values():
            stream.run(factory(), batched=True)
        labels = {
            m["labels"]["summary"]
            for m in reg.snapshot()["metrics"]
            if m["name"] == "summary_insert_many_batch_size"
        }
        # One series per instrumented class in the line-ups.
        assert {
            "LTC",
            "SpaceSaving",
            "Frequent",
            "LossyCounting",
            "SketchTopK",
            "PIE",
            "SketchPersistent",
        } <= labels
        # Shared classes (the three SketchTopK/SketchPersistent variants)
        # pool into one series, so counts are a positive multiple of the
        # period count — one observation per whole-period batch.
        for m in reg.snapshot()["metrics"]:
            if m["name"] == "summary_insert_many_batch_size":
                assert m["count"] > 0
                assert m["count"] % stream.num_periods == 0

    def test_metrics_do_not_change_batched_results(self):
        """Headline guarantee extended to the batch paths: metrics-on
        batched ingestion produces bit-identical summaries."""
        from repro.summaries.lossy_counting import LossyCounting
        from repro.summaries.space_saving import SpaceSaving
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=2_000, num_distinct=300, skew=1.0, num_periods=4, seed=9
        )
        for factory in (
            lambda: SpaceSaving(capacity=64),
            lambda: LossyCounting(capacity=64),
        ):
            obs.disable()
            plain = factory()
            stream.run(plain, batched=True)
            obs.enable()
            metered = factory()
            stream.run(metered, batched=True)
            obs.disable()
            assert plain.reported_pairs(32) == metered.reported_pairs(32)
            assert vars(plain).keys() == vars(metered).keys()


class TestInstrumentedRunner:
    def test_per_period_series_recorded_and_results_identical(self):
        from repro.experiments.runner import run_and_evaluate
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=4_000, num_distinct=300, skew=1.0, num_periods=5, seed=7
        )
        config = LTCConfig(
            num_buckets=32,
            bucket_width=8,
            items_per_period=stream.period_length,
        )
        factories = {"LTC": lambda: LTC(config)}
        obs.disable()
        plain = run_and_evaluate(factories, stream, 20, 1.0, 1.0)
        reg = obs.enable()
        metered = run_and_evaluate(factories, stream, 20, 1.0, 1.0)
        assert metered == plain
        metrics = {
            (m["name"], tuple(sorted(m["labels"].items()))): m
            for m in reg.snapshot()["metrics"]
        }
        key = (("summary", "LTC"),)
        recall = metrics[("runner_period_recall", key)]
        are = metrics[("runner_period_are", key)]
        assert recall["count"] == stream.num_periods
        assert are["count"] == stream.num_periods
        # The last boundary's recall equals the final evaluated precision.
        assert metrics[("runner_last_recall", key)]["value"] == pytest.approx(
            plain[0].precision
        )
