"""Failure injection: malformed inputs must fail loudly, not corrupt."""

from __future__ import annotations

import io
import math

import pytest

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.streams.io import load_items, load_timestamped
from repro.streams.model import PeriodicStream


class TestConfigPoisoning:
    def test_nan_alpha_rejected(self):
        with pytest.raises(ValueError):
            LTCConfig(num_buckets=1, alpha=math.nan, items_per_period=1)

    def test_nan_beta_rejected(self):
        with pytest.raises(ValueError):
            LTCConfig(num_buckets=1, beta=math.nan, items_per_period=1)

    def test_infinite_weights_rejected(self):
        with pytest.raises(ValueError):
            LTCConfig(num_buckets=1, alpha=math.inf, items_per_period=1)


class TestMalformedTraces:
    def test_garbage_timestamp_raises(self):
        with pytest.raises(ValueError):
            load_timestamped(io.StringIO("1 not-a-time\n"), num_periods=1)

    def test_missing_column_raises(self):
        with pytest.raises(IndexError):
            load_timestamped(io.StringIO("loner\n"), num_periods=1)

    def test_items_trace_tolerates_whitespace_noise(self):
        stream = load_items(io.StringIO("  1  \n\t2\n"), num_periods=1)
        assert stream.events == [1, 2]

    def test_binary_garbage_string_ids_still_hash(self):
        # Weird unicode ids canonicalise instead of crashing.
        stream = load_items(io.StringIO("ȩ̷̛͠\nздравствуйте\n"), num_periods=1)
        assert len(stream.events) == 2


class TestTimedDriveAbuse:
    def make(self):
        return LTC(
            LTCConfig(num_buckets=1, bucket_width=2, items_per_period=1)
        )

    def test_negative_period_seconds(self):
        with pytest.raises(ValueError):
            self.make().insert_timed(1, timestamp=0.0, period_seconds=-1.0)

    def test_backwards_time(self):
        ltc = self.make()
        ltc.insert_timed(1, timestamp=10.0, period_seconds=5.0)
        with pytest.raises(ValueError):
            ltc.insert_timed(1, timestamp=9.0, period_seconds=5.0)

    def test_state_survives_rejected_call(self):
        """A rejected insert must not half-apply: the item placement
        happens before validation errors can fire, so validate first."""
        ltc = self.make()
        ltc.insert_timed(1, timestamp=1.0, period_seconds=5.0)
        before = list(ltc.cells())
        with pytest.raises(ValueError):
            ltc.insert_timed(2, timestamp=0.5, period_seconds=5.0)
        # The failed arrival must not have been recorded.
        assert list(ltc.cells()) == before


class TestStreamModelAbuse:
    def test_negative_period_count(self):
        with pytest.raises(ValueError):
            PeriodicStream(events=[1], num_periods=-1)

    def test_run_propagates_summary_errors(self):
        class Exploding:
            def insert(self, item):
                raise RuntimeError("boom")

        stream = PeriodicStream(events=[1, 2], num_periods=1)
        with pytest.raises(RuntimeError, match="boom"):
            stream.run(Exploding())
