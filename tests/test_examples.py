"""Every shipped example must run clean and print its headline result.

These are subprocess end-to-end tests — the examples are the library's
user-facing contract, so they are tested like any other surface.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["top-10 significant items", "point query"]),
    ("ddos_detection.py", ["attackers 20/20", "flash-crowd"]),
    ("website_ranking.py", ["precision vs exact ranking: 100%"]),
    ("network_scheduling.py", ["significant-flows strategy"]),
    ("trending_topics.py", ["windowed LTC", "15/15"]),
    ("checkpoint_pipeline.py", ["matches the uninterrupted run exactly"]),
    ("datacenter_monitoring.py", ["precision from merged summaries: 100%"]),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for snippet in expected:
        assert snippet in result.stdout, (
            f"{script}: expected {snippet!r} in output:\n{result.stdout[-2000:]}"
        )


def test_every_example_file_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {name for name, _ in CASES}
