"""TopKHeap: bounded indexed min-heap semantics and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries.heap import TopKHeap


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_min_value_zero_until_full(self):
        heap = TopKHeap(3)
        heap.offer(1, 10.0)
        assert heap.min_value() == 0.0
        heap.offer(2, 5.0)
        heap.offer(3, 7.0)
        assert heap.min_value() == 5.0

    def test_contains_and_value_of(self):
        heap = TopKHeap(2)
        heap.offer(9, 4.0)
        assert 9 in heap
        assert heap.value_of(9) == 4.0
        assert heap.value_of(8) == 0.0

    def test_replace_min_when_full(self):
        heap = TopKHeap(2)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        heap.offer(3, 5.0)  # evicts item 1
        assert 1 not in heap
        assert set(dict(heap.items())) == {2, 3}

    def test_rejects_smaller_than_min_when_full(self):
        heap = TopKHeap(2)
        heap.offer(1, 10.0)
        heap.offer(2, 20.0)
        heap.offer(3, 5.0)
        assert 3 not in heap

    def test_update_increases_value(self):
        heap = TopKHeap(2)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        heap.offer(1, 50.0)
        assert heap.value_of(1) == 50.0
        assert heap.min_value() == 2.0

    def test_update_can_decrease_value(self):
        heap = TopKHeap(2)
        heap.offer(1, 10.0)
        heap.offer(2, 20.0)
        heap.offer(2, 1.0)
        assert heap.min_value() == 1.0

    def test_best_sorted_descending(self):
        heap = TopKHeap(5)
        for item, value in [(1, 3.0), (2, 9.0), (3, 1.0), (4, 9.0)]:
            heap.offer(item, value)
        best = heap.best()
        assert [v for _, v in best] == sorted([3.0, 9.0, 1.0, 9.0], reverse=True)
        # Equal values tie-break by item id.
        assert best[0] == (2, 9.0)
        assert best[1] == (4, 9.0)

    def test_best_limited(self):
        heap = TopKHeap(5)
        for i in range(5):
            heap.offer(i, float(i))
        assert len(heap.best(2)) == 2

    def test_len(self):
        heap = TopKHeap(3)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        assert len(heap) == 2


class TestAgainstReference:
    """The heap must track exactly the top-k of a monotone estimate stream."""

    def test_monotone_offers_keep_topk(self):
        heap = TopKHeap(10)
        counts: dict = {}
        import random

        rng = random.Random(5)
        for _ in range(3_000):
            item = rng.randrange(100)
            counts[item] = counts.get(item, 0) + 1
            heap.offer(item, float(counts[item]))
            assert heap.check_invariant()
        ranked = sorted(counts.values(), reverse=True)
        boundary = ranked[9]
        got = {i for i, _ in heap.best()}
        # With monotone values every item strictly above the boundary count
        # must be tracked (ties at the boundary may go either way), and
        # every tracked item must have at least the boundary count.
        for item, count in counts.items():
            if count > boundary:
                assert item in got
        assert all(counts[item] >= boundary for item in got)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.0, 100.0, allow_nan=False)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_property(self, offers):
        heap = TopKHeap(7)
        for item, value in offers:
            heap.offer(item, value)
        assert heap.check_invariant()
        assert len(heap) <= 7
