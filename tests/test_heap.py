"""TopKHeap: bounded indexed min-heap semantics and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries.heap import TopKHeap


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_min_value_zero_until_full(self):
        heap = TopKHeap(3)
        heap.offer(1, 10.0)
        assert heap.min_value() == 0.0
        heap.offer(2, 5.0)
        heap.offer(3, 7.0)
        assert heap.min_value() == 5.0

    def test_contains_and_value_of(self):
        heap = TopKHeap(2)
        heap.offer(9, 4.0)
        assert 9 in heap
        assert heap.value_of(9) == 4.0
        assert heap.value_of(8) == 0.0

    def test_replace_min_when_full(self):
        heap = TopKHeap(2)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        heap.offer(3, 5.0)  # evicts item 1
        assert 1 not in heap
        assert set(dict(heap.items())) == {2, 3}

    def test_rejects_smaller_than_min_when_full(self):
        heap = TopKHeap(2)
        heap.offer(1, 10.0)
        heap.offer(2, 20.0)
        heap.offer(3, 5.0)
        assert 3 not in heap

    def test_update_increases_value(self):
        heap = TopKHeap(2)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        heap.offer(1, 50.0)
        assert heap.value_of(1) == 50.0
        assert heap.min_value() == 2.0

    def test_update_can_decrease_value(self):
        heap = TopKHeap(2)
        heap.offer(1, 10.0)
        heap.offer(2, 20.0)
        heap.offer(2, 1.0)
        assert heap.min_value() == 1.0

    def test_best_sorted_descending(self):
        heap = TopKHeap(5)
        for item, value in [(1, 3.0), (2, 9.0), (3, 1.0), (4, 9.0)]:
            heap.offer(item, value)
        best = heap.best()
        assert [v for _, v in best] == sorted([3.0, 9.0, 1.0, 9.0], reverse=True)
        # Equal values tie-break by item id.
        assert best[0] == (2, 9.0)
        assert best[1] == (4, 9.0)

    def test_best_limited(self):
        heap = TopKHeap(5)
        for i in range(5):
            heap.offer(i, float(i))
        assert len(heap.best(2)) == 2

    def test_len(self):
        heap = TopKHeap(3)
        heap.offer(1, 1.0)
        heap.offer(2, 2.0)
        assert len(heap) == 2


class TestStaleAndDuplicateOffers:
    """Re-offers of tracked items — rising, falling, and repeated values.

    The batched fast paths skip offers that provably cannot change the
    heap (full heap, untracked item, value ≤ current min); these tests
    pin the offer semantics that proof rests on.
    """

    def test_duplicate_offer_same_value_is_noop(self):
        heap = TopKHeap(3)
        heap.offer(1, 5.0)
        heap.offer(2, 7.0)
        before = (list(heap._items), list(heap._values), dict(heap._pos))
        heap.offer(1, 5.0)
        assert (list(heap._items), list(heap._values), dict(heap._pos)) == before
        assert heap.check_invariant()

    def test_rising_estimates_update_in_place(self):
        heap = TopKHeap(3)
        for value in (1.0, 2.0, 3.0, 10.0):
            heap.offer(4, value)
            assert heap.check_invariant()
        assert heap.value_of(4) == 10.0
        assert len(heap) == 1

    def test_falling_estimate_of_tracked_item_sticks(self):
        """A tracked item's value may fall (CU/Count estimates are not
        monotone per-item); the heap must accept it and restore order."""
        heap = TopKHeap(3)
        heap.offer(1, 9.0)
        heap.offer(2, 6.0)
        heap.offer(3, 8.0)
        heap.offer(1, 2.0)
        assert heap.value_of(1) == 2.0
        assert heap.min_value() == 2.0
        assert heap.check_invariant()

    def test_tracked_item_below_min_still_updates_when_full(self):
        """The batch skip must never drop offers for *tracked* items:
        even a value at/below the current min updates the entry."""
        heap = TopKHeap(2)
        heap.offer(1, 5.0)
        heap.offer(2, 9.0)
        assert heap.min_value() == 5.0
        heap.offer(1, 1.0)  # tracked, value below old min
        assert heap.value_of(1) == 1.0
        assert heap.min_value() == 1.0
        assert heap.check_invariant()

    def test_untracked_at_exact_min_rejected_when_full(self):
        """``value <= min`` (not ``<``) is the no-op boundary the skip
        relies on: an untracked offer tying the min is dropped."""
        heap = TopKHeap(2)
        heap.offer(1, 5.0)
        heap.offer(2, 9.0)
        heap.offer(3, 5.0)
        assert 3 not in heap
        assert 1 in heap

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.floats(0.0, 50.0, allow_nan=False)),
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_interleaved_rise_and_fall_keeps_invariant(self, offers):
        heap = TopKHeap(4)
        last: dict = {}
        for item, value in offers:
            heap.offer(item, value)
            last[item] = value
            assert heap.check_invariant()
        for item in heap._pos:
            assert heap.value_of(item) == last[item]


class TestAgainstReference:
    """The heap must track exactly the top-k of a monotone estimate stream."""

    def test_monotone_offers_keep_topk(self):
        heap = TopKHeap(10)
        counts: dict = {}
        import random

        rng = random.Random(5)
        for _ in range(3_000):
            item = rng.randrange(100)
            counts[item] = counts.get(item, 0) + 1
            heap.offer(item, float(counts[item]))
            assert heap.check_invariant()
        ranked = sorted(counts.values(), reverse=True)
        boundary = ranked[9]
        got = {i for i, _ in heap.best()}
        # With monotone values every item strictly above the boundary count
        # must be tracked (ties at the boundary may go either way), and
        # every tracked item must have at least the boundary count.
        for item, count in counts.items():
            if count > boundary:
                assert item in got
        assert all(counts[item] >= boundary for item in got)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.0, 100.0, allow_nan=False)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_property(self, offers):
        heap = TopKHeap(7)
        for item, value in offers:
            heap.offer(item, value)
        assert heap.check_invariant()
        assert len(heap) <= 7
