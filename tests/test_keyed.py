"""KeyedSummary: arbitrary identifiers over integer-keyed summaries."""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.core.keyed import KeyedSummary
from repro.core.ltc import LTC
from repro.summaries.space_saving import SpaceSaving


def keyed_ltc(reverse_capacity=1024) -> KeyedSummary:
    inner = LTC(
        LTCConfig(
            num_buckets=8,
            bucket_width=8,
            alpha=1.0,
            beta=1.0,
            items_per_period=4,
        )
    )
    return KeyedSummary(inner, reverse_capacity=reverse_capacity)


class TestBasics:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            KeyedSummary(SpaceSaving(4), reverse_capacity=0)

    def test_string_keys_roundtrip(self):
        summary = keyed_ltc()
        for _ in range(5):
            summary.insert("alice")
        summary.insert("bob")
        summary.end_period()
        summary.finalize()
        top = summary.top_k(2)
        assert top[0].item == "alice"
        assert top[0].frequency == 5.0
        assert summary.query("alice") > summary.query("bob")

    def test_mixed_key_types(self):
        summary = keyed_ltc()
        summary.insert("x")
        summary.insert(b"x")  # same canonical key as the str
        summary.insert(7)
        assert summary.query("x") == summary.query(b"x")
        assert summary.query(7) == 2.0 or summary.query(7) >= 1.0

    def test_unknown_key_queries_zero(self):
        summary = keyed_ltc()
        summary.insert("seen")
        assert summary.query("never") == 0.0

    def test_wraps_any_summary(self):
        summary = KeyedSummary(SpaceSaving(8))
        for name in ("a", "a", "b"):
            summary.insert(name)
        assert summary.top_k(1)[0].item == "a"

    def test_period_forwarding(self):
        from repro.membership.bloom import BloomFilter
        from repro.persistent.sketch_persistent import SketchPersistent
        from repro.sketches.count_min import CountMinSketch

        inner = SketchPersistent(
            CountMinSketch(1024, rows=3), BloomFilter(1 << 14), k=5
        )
        summary = KeyedSummary(inner)
        for _ in range(3):
            summary.insert("site")
            summary.insert("site")
            summary.end_period()
        assert summary.query("site") == 3.0


class TestReverseMapCap:
    def test_eviction_falls_back_to_integer(self):
        summary = keyed_ltc(reverse_capacity=4)
        for i in range(20):
            summary.insert(f"key-{i}")
        # Early keys' reverse mappings were evicted; reports still work.
        reports = summary.top_k(50)
        assert reports
        assert all(r.item is not None for r in reports)

    def test_hot_key_mapping_retained(self):
        summary = keyed_ltc(reverse_capacity=4)
        for i in range(50):
            summary.insert("hot")
            summary.insert(f"cold-{i}")
        top = summary.top_k(1)
        assert top[0].item == "hot"

    def test_map_size_bounded(self):
        summary = keyed_ltc(reverse_capacity=16)
        for i in range(1_000):
            summary.insert(f"k{i}")
        assert len(summary._original) <= 16
