"""R004 fixture: numpy imported at top level without a guarded fallback."""

import numpy as np  # R004: unguarded top-level import

try:
    from numpy import ndarray  # R004: try block never catches ImportError
except ValueError:
    ndarray = None

try:
    import numpy  # fine: guarded with ImportError fallback
except ImportError:
    numpy = None
