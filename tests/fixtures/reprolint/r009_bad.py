"""Seeded R009 violation: the batched path skips state ``insert`` touches.

``SkewedKernel.insert_many`` never writes ``_total``; the per-event and
batched ingestion paths have diverged.  ``PairedKernel`` (delegates) and
``VectorKernel`` (mirrors every attribute, one via a may-write) are the
silent controls.
"""


class SkewedKernel:
    def __init__(self):
        self._freqs = [0] * 8
        self._total = 0

    def insert(self, item):
        self._freqs[item % 8] += 1
        self._total += 1

    def insert_many(self, items):
        for item in items:
            self._freqs[item % 8] += 1


class PairedKernel:
    def __init__(self):
        self._freqs = [0] * 8
        self._total = 0

    def insert(self, item):
        self._freqs[item % 8] += 1
        self._total += 1

    def insert_many(self, items):
        for item in items:
            self.insert(item)


class VectorKernel:
    def __init__(self):
        self._freqs = [0] * 8
        self._hot = []

    def insert(self, item):
        self._freqs[item % 8] += 1
        self._hot = self._hot + [item]

    def insert_many(self, items):
        for item in items:
            self._freqs[item % 8] += 1
        self._hot.extend(items)


class WaivedKernel:
    def __init__(self):
        self._total = 0
        self._count = 0

    def insert(self, item):
        self._total += 1

    # reprolint: parity-ok — fixture control: the batch path recomputes totals elsewhere
    def insert_many(self, items):
        self._count = len(items)
