"""R001 fixture: both directions of the insert/insert_many pairing."""

import abc


class StreamSummary(abc.ABC):
    """Stub of the real base so the linter can resolve inheritance."""

    @abc.abstractmethod
    def insert(self, item):
        ...

    def insert_many(self, items):
        for item in items:
            self.insert(item)


class OrphanBatch:
    """Defines insert_many with no per-event insert anywhere."""

    def insert_many(self, items):  # R001 line: direction A
        pass


class MissingBatch(StreamSummary):
    """Overrides insert but keeps the base per-event insert_many loop."""

    def insert(self, item):  # R001 line: direction B
        pass

    def query(self, item):
        return 0.0

    def top_k(self, k):
        return []


class PairedFine(StreamSummary):
    """Control: both methods overridden — must NOT be flagged."""

    def insert(self, item):
        pass

    def insert_many(self, items):
        pass

    def query(self, item):
        return 0.0

    def top_k(self, k):
        return []
