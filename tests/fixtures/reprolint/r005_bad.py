"""R005 fixture: checkpoint codec with no format-version constant at all."""


def to_bytes(state):  # R005 line: no module-level MAGIC/VERSION/FORMAT
    return b"LTC?" + bytes(state)


def from_bytes(blob):
    return list(blob[4:])
