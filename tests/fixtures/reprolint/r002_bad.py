"""R002 fixture: observability misuse inside ingestion hot paths.

``obs`` is deliberately an undefined name — the linter only parses this
file, it never imports it.
"""


class HotSummary:
    def __init__(self):
        self._obs = None

    def insert(self, item):
        registry = obs.registry()  # R002: registry() on the hot path
        if obs.is_enabled():  # R002: is_enabled() on the hot path
            registry.counter("hits")  # R002: metric registration inline

    def update_weights(self, item):
        if self._obs is not None:
            self._obs.counter("w")  # R002 x2: registration + unguarded use
        if self._obs is None:  # second guard -> R002: hoist to one guard
            return

    def top_k(self, k):
        # Not a hot path: inline registry access here is fine.
        return obs.registry()
