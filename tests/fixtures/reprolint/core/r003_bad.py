"""R003 fixture: unseeded entropy inside a deterministic-core directory."""

import os
import random
import time

from random import choice  # R003: unseeded import into the core


def sample_noise():
    random.seed()  # R003
    x = random.random()  # R003
    y = random.randint(0, 10)  # R003
    stamp = time.time()  # R003
    raw = os.urandom(8)  # R003
    rng = random.Random(42)  # fine: explicitly seeded generator
    return x, y, stamp, raw, rng.random(), choice([1, 2])
