"""Seeded R006 violations: cell-state mutations that skip the listener.

``LTC`` is in the default hooked inventory, and this file sits under a
``core/`` directory, so every write to a cell-state attribute must be
post-dominated by a CellListener notification (or sit in a detached
region / carry a justified waiver).
"""


class LTC:
    def __init__(self):
        self._keys = []
        self._freqs = []
        self._counters = []
        self._cell_listener = None

    def evict(self, j, item):
        self._keys[j] = item
        self._freqs[j] = 1

    def insert(self, item, j):
        self._freqs[j] += 1
        listener = self._cell_listener
        if listener is not None:
            listener.cell_touched(j)

    def update(self, j, fast):
        self._counters[j] = 0
        if fast:
            listener = self._cell_listener
            if listener is not None:
                listener.cell_touched(j)

    def reset(self):
        listener = self._cell_listener
        if listener is None:
            self._freqs = []
            return
        self._freqs = []
        listener.cells_reset()

    def delegate(self, item, j):
        self.insert(item, j)
        self._counters[j] += 1
        self.insert(item, j)

    # reprolint: detached — fixture control: rebind before any listener exists
    def rebuild(self):
        self._keys = []

    # reprolint: detached
    def bare_waiver(self):
        self._counters = []


def restore(ltc, cells):
    for j, cell in enumerate(cells):
        ltc._freqs[j] = cell


# reprolint: detached — fixture control: restores before a listener attaches
def restore_waived(ltc, cells):
    ltc._keys = list(cells)
