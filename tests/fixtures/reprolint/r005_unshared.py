"""R005 fixture: a version constant exists but only one side uses it."""

_MAGIC_V3 = b"LTC3"


class Codec:
    def to_bytes(self):  # R005 line: from_bytes never checks _MAGIC_V3
        return _MAGIC_V3 + b"payload"

    def from_bytes(self, blob):
        return blob[4:]
