"""Seeded R008 violations: shm segments leaked on exception paths.

Creations must be released on every CFG path — exception edges
included — or have ownership transferred safely; attach-side handles
must never unlink.
"""

from multiprocessing.shared_memory import SharedMemory


def leak_on_exception(nbytes):
    seg = SharedMemory(create=True, size=nbytes)
    fill(seg)
    seg.close()
    seg.unlink()


def clean_finally(nbytes):
    seg = SharedMemory(create=True, size=nbytes)
    try:
        fill(seg)
    finally:
        seg.close()
        seg.unlink()


def attach_then_unlink(name):
    seg = SharedMemory(name=name)
    try:
        return bytes(seg.buf)
    finally:
        seg.close()
        seg.unlink()


def transfer_outside_try(nbytes):
    ring = ShmRing(8, nbytes)
    register(ring)


def transfer_inside_try(registry, nbytes):
    try:
        registry.append(ShmRing(8, nbytes))
    finally:
        drain(registry)


def returned_to_caller(nbytes):
    ring = ShmRing(8, nbytes)
    return ring


# reprolint: shm-owner — fixture control: the harness releases it
def waived_creation(nbytes):
    seg = SharedMemory(create=True, size=nbytes)
    publish(seg)
