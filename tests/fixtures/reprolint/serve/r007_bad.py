"""Seeded R007 violations: blocking calls reachable from serve coroutines.

The directory name (``serve/``) puts every ``async def`` here in the
rule's entry set; the blocking primitives are reached both directly and
through the call graph (including an attribute-typed queue receiver).
"""

import queue
import subprocess
import time


def _load_config(path):
    with open(path) as fh:
        return fh.read()


async def handle_request(path):
    time.sleep(0.1)
    return _load_config(path)


async def run_job(cmd):
    subprocess.run(cmd)


class Drainer:
    def __init__(self, q: queue.Queue):
        self._q = q

    async def drain(self):
        return self._q.get()

    async def poll(self):
        return self._q.get(timeout=0.01)


async def save_state(path, data):
    with open(path, "w") as fh:  # reprolint: blocking-ok — fixture control: this write is the durability barrier
        fh.write(data)


async def offloaded(loop, path):
    return await loop.run_in_executor(None, _load_config, path)
