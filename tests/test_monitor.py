"""TopKMonitor: continuous snapshots and churn analysis."""

from __future__ import annotations

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.experiments.monitor import TopKMonitor
from repro.summaries.space_saving import SpaceSaving
from tests.conftest import make_stream


def monitored_ltc(k=3, n=4) -> TopKMonitor:
    return TopKMonitor(
        summary=LTC(
            LTCConfig(
                num_buckets=8,
                bucket_width=8,
                alpha=1.0,
                beta=1.0,
                items_per_period=n,
            )
        ),
        k=k,
    )


class TestSnapshots:
    def test_one_snapshot_per_period(self):
        monitor = monitored_ltc()
        stream = make_stream([1, 2, 3, 4] * 5, num_periods=5)
        stream.run(monitor)
        assert len(monitor.snapshots) == 5
        assert len(monitor.events) == 4

    def test_stable_stream_zero_churn(self):
        monitor = monitored_ltc()
        stream = make_stream([1, 1, 2, 3] * 6, num_periods=6)
        stream.run(monitor)
        assert monitor.total_churn() == 0
        assert monitor.mean_churn() == 0.0
        assert monitor.stabilised_at() is not None

    def test_regime_change_detected(self):
        # Periods 0-3 dominated by {1,2,3}; periods 4-7 by {7,8,9}.
        events = [1, 1, 2, 2, 3, 3] * 4 + [7, 7, 8, 8, 9, 9] * 12
        monitor = monitored_ltc(k=3, n=6)
        stream = make_stream(events, num_periods=16)
        stream.run(monitor)
        assert monitor.total_churn() > 0
        churned_periods = [e.period for e in monitor.events if e.churn > 0]
        assert churned_periods, "the takeover must register as churn"
        assert min(churned_periods) >= 4  # stable until the regime change

    def test_tenure(self):
        monitor = monitored_ltc(k=2, n=3)
        stream = make_stream([1, 1, 2] * 4, num_periods=4)
        stream.run(monitor)
        assert monitor.tenure(1) == 4
        assert monitor.tenure(99) == 0

    def test_churn_event_fields(self):
        monitor = monitored_ltc(k=1, n=2)
        stream = make_stream([1, 1, 2, 2, 2, 2], num_periods=3)
        stream.run(monitor)
        takeovers = [e for e in monitor.events if e.churn > 0]
        assert takeovers
        event = takeovers[0]
        assert event.entered == {2}
        assert event.left == {1}
        assert event.churn == 2


class TestForwarding:
    def test_wraps_any_summary(self):
        monitor = TopKMonitor(summary=SpaceSaving(8), k=2)
        stream = make_stream([5, 5, 6] * 3, num_periods=3)
        stream.run(monitor)
        assert monitor.query(5) == 6.0
        assert [r.item for r in monitor.top_k(1)] == [5]
        assert len(monitor.snapshots) == 3

    def test_stabilised_none_for_short_runs(self):
        monitor = monitored_ltc()
        stream = make_stream([1, 2, 3, 4], num_periods=1)
        stream.run(monitor)
        assert monitor.stabilised_at() is None
