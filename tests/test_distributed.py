"""Distributed monitoring: partitioning, coordinated sampling, coordinators."""

from __future__ import annotations

import random

import pytest

from repro.core.config import LTCConfig
from repro.distributed.coordinator import (
    MergingCoordinator,
    SamplingCoordinator,
)
from repro.distributed.partition import partition_random, partition_sharded
from repro.distributed.sampling import CoordinatedSampler, combine_reports
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream
from tests.conftest import make_stream


@pytest.fixture(scope="module")
def logical_stream():
    return zipf_stream(
        num_events=12_000, num_distinct=2_000, skew=1.1, num_periods=12, seed=8
    )


class TestPartitioning:
    def test_sharded_conserves_events(self, logical_stream):
        sites = partition_sharded(logical_stream, 4)
        assert sum(len(s) for s in sites) == len(logical_stream)

    def test_sharded_items_disjoint(self, logical_stream):
        sites = partition_sharded(logical_stream, 4)
        seen = {}
        for index, site in enumerate(sites):
            for item in set(site.events):
                assert seen.setdefault(item, index) == index

    def test_sharded_preserves_period_alignment(self, logical_stream):
        """An item's per-period presence at its site matches the logical
        stream's periods."""
        sites = partition_sharded(logical_stream, 4)
        truth = GroundTruth(logical_stream)
        for site in sites:
            site_truth = GroundTruth(site)
            for item in list(set(site.events))[:100]:
                assert site_truth.persistency(item) == truth.persistency(item)

    def test_random_conserves_events(self, logical_stream):
        sites = partition_random(logical_stream, 4)
        assert sum(len(s) for s in sites) == len(logical_stream)

    def test_random_spreads_items(self, logical_stream):
        sites = partition_random(logical_stream, 4)
        heavy = max(set(logical_stream.events), key=logical_stream.events.count)
        appearing_at = sum(1 for s in sites if heavy in set(s.events))
        assert appearing_at >= 2  # heavy items hit several sites

    def test_rejects_zero_sites(self, logical_stream):
        with pytest.raises(ValueError):
            partition_sharded(logical_stream, 0)
        with pytest.raises(ValueError):
            partition_random(logical_stream, 0)


class TestCoordinatedSampler:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            CoordinatedSampler(0.0)

    def test_full_rate_exact(self):
        sampler = CoordinatedSampler(1.0)
        stream = make_stream([1, 2, 1, 3, 1, 2], num_periods=3)
        stream.run(sampler)
        truth = GroundTruth(stream)
        for item in truth.items():
            assert sampler.query(item) == truth.persistency(item)

    def test_same_seed_samples_same_items(self):
        a = CoordinatedSampler(0.3, seed=5)
        b = CoordinatedSampler(0.3, seed=5)
        for item in range(200):
            a.insert(item)
            b.insert(item)
        assert {i for i, _, _ in a.export()} == {i for i, _, _ in b.export()}

    def test_bitmap_or_reconstructs_global_persistency(self):
        """The core coordinated-sampling property: per-site bitmaps OR to
        the exact global persistency under arbitrary splits."""
        rng = random.Random(3)
        events = [rng.randrange(40) for _ in range(600)]
        stream = make_stream(events, num_periods=6)
        truth = GroundTruth(stream)
        sites = partition_random(stream, 3, seed=9)
        reports = []
        for site in sites:
            sampler = CoordinatedSampler(1.0, seed=5)
            site.run(sampler)
            reports.append(sampler.export())
        combined = combine_reports(reports)
        for item in set(events):
            freq, bits = combined[item]
            assert freq == truth.frequency(item)
            assert bin(bits).count("1") == truth.persistency(item)

    def test_export_bytes_scales_with_entries(self):
        sampler = CoordinatedSampler(1.0)
        for item in range(10):
            sampler.insert(item)
        assert sampler.export_bytes() == 10 * 9  # 8B + 1 bitmap byte


class TestMergingCoordinator:
    def make_config(self):
        return LTCConfig(
            num_buckets=64,
            bucket_width=8,
            alpha=0.0,
            beta=1.0,
            items_per_period=1,  # overridden per site
        )

    def test_sharded_matches_centralised(self, logical_stream):
        truth = GroundTruth(logical_stream)
        exact = truth.top_k_items(50, 0.0, 1.0)
        sites = partition_sharded(logical_stream, 4)
        report = MergingCoordinator(self.make_config()).run(sites, 50)
        hits = len(report.items() & exact)
        assert hits / 50 >= 0.8

    def test_communication_is_summary_sized(self, logical_stream):
        sites = partition_sharded(logical_stream, 4)
        report = MergingCoordinator(self.make_config()).run(sites, 10)
        # 4 summaries of ~512 cells at 17B/cell serialized + headers —
        # orders of magnitude below shipping the 12k raw events.
        assert report.communication_bytes < 80_000
        assert report.num_sites == 4


class TestSamplingCoordinator:
    def test_sampled_items_exact_under_random_split(self, logical_stream):
        truth = GroundTruth(logical_stream)
        sites = partition_random(logical_stream, 4)
        coordinator = SamplingCoordinator(sample_rate=1.0, beta=1.0)
        report = coordinator.run(sites, 50)
        for item, sig in report.top_k:
            assert sig == truth.persistency(item)

    def test_low_rate_caps_recall(self, logical_stream):
        truth = GroundTruth(logical_stream)
        exact = truth.top_k_items(50, 0.0, 1.0)
        sites = partition_random(logical_stream, 4)
        report = SamplingCoordinator(sample_rate=0.2).run(sites, 50)
        hit_rate = len(report.items() & exact) / 50
        assert hit_rate < 0.6  # ≈ sample rate in expectation

    def test_communication_grows_with_rate(self, logical_stream):
        sites = partition_random(logical_stream, 4)
        low = SamplingCoordinator(sample_rate=0.1).run(sites, 10)
        high = SamplingCoordinator(sample_rate=0.8).run(sites, 10)
        assert high.communication_bytes > low.communication_bytes
