"""CLI subcommands end-to-end (on the cached small default datasets)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import configs


@pytest.fixture(autouse=True)
def small_datasets(monkeypatch):
    """Shrink the dataset builders so CLI tests stay fast."""
    from repro.streams.datasets import temporal_zipf_stream

    def tiny(name):
        def build(**kwargs):
            return temporal_zipf_stream(
                num_events=4_000,
                num_distinct=800,
                skew=1.0,
                num_periods=8,
                burst_fraction=0.3,
                seed=1,
                name=name,
            )

        return build

    monkeypatch.setattr(
        configs,
        "DATASET_BUILDERS",
        {k: tiny(k) for k in ("caida", "network", "social")},
    )
    monkeypatch.setattr(configs, "_DATASET_CACHE", {})


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "--dataset", "caida", "--memory-kb", "8", "-k", "10"]) == 0
        out = capsys.readouterr().out
        assert "LTC top items" in out

    def test_compare_significant(self, capsys):
        code = main(
            ["compare", "--dataset", "network", "--memory-kb", "8", "-k", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LTC" in out and "precision" in out

    def test_compare_frequent_lineup(self, capsys):
        main(
            [
                "compare",
                "--dataset",
                "social",
                "--memory-kb",
                "8",
                "-k",
                "20",
                "--beta",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert "SS" in out and "CU" in out

    def test_compare_persistent_lineup(self, capsys):
        main(
            [
                "compare",
                "--dataset",
                "social",
                "--memory-kb",
                "8",
                "-k",
                "20",
                "--alpha",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert "PIE" in out

    def test_throughput(self, capsys):
        main(
            [
                "throughput",
                "--dataset",
                "caida",
                "--memory-kb",
                "8",
                "-k",
                "10",
                "--beta",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert "Mops" in out

    def test_demo_workers(self, capsys):
        """--workers routes demo through the multi-core sharded pipeline."""
        code = main(
            [
                "demo",
                "--dataset",
                "caida",
                "--memory-kb",
                "8",
                "-k",
                "10",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sharded top items (2 workers" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestMetricsOut:
    def test_demo_writes_snapshot_and_disables_after(self, tmp_path, capsys):
        from repro import obs

        path = tmp_path / "metrics.json"
        code = main(
            [
                "demo",
                "--dataset",
                "caida",
                "--memory-kb",
                "8",
                "-k",
                "10",
                "--metrics-out",
                str(path),
            ]
        )
        assert code == 0
        assert not obs.is_enabled()  # flag restored on the way out
        snapshot = obs.export.load_json_snapshot(path)
        values = {
            m["name"]: m["value"]
            for m in snapshot["metrics"]
            if m["type"] == "counter"
        }
        assert values["ltc_inserts_total"] == 4_000

    def test_stats_table(self, tmp_path, capsys):
        from repro import obs

        path = tmp_path / "metrics.json"
        main(
            ["demo", "--dataset", "caida", "--memory-kb", "8",
             "--metrics-out", str(path)]
        )
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "ltc_inserts_total" in out

        assert main(["stats", str(path), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE ltc_inserts_total counter" in out

        assert main(["stats", str(path), "--format", "json"]) == 0
        import json

        reparsed = json.loads(capsys.readouterr().out)
        assert reparsed == obs.export.load_json_snapshot(path)

    def test_stats_rejects_bad_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"no": "metrics"}')
        assert main(["stats", str(bad)]) == 1
        assert "cannot read snapshot" in capsys.readouterr().out
        assert main(["stats", str(tmp_path / "missing.json")]) == 1


class TestCheckLongtail:
    def test_builtin_dataset_is_longtailed(self, capsys):
        code = main(["check-longtail", "--dataset", "caida"])
        assert code == 0
        out = capsys.readouterr().out
        assert "long-tailed" in out

    def test_uniform_trace_rejected(self, tmp_path, capsys):
        trace = tmp_path / "uniform.txt"
        trace.write_text("".join(f"{i}\n" for i in range(2_000)))
        code = main(["check-longtail", "--trace", str(trace)])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT long-tailed" in out

    def test_longtailed_trace_accepted(self, tmp_path, capsys):
        from repro.streams.synthetic import zipf_stream

        trace = tmp_path / "zipf.txt"
        stream = zipf_stream(5_000, 800, 1.2, num_periods=2, seed=6)
        trace.write_text("".join(f"{e}\n" for e in stream.events))
        assert main(["check-longtail", "--trace", str(trace)]) == 0


class TestFigureCommand:
    def test_unknown_figure_lists_available(self, capsys):
        code = main(["figure", "nonexistent_zzz"])
        assert code == 2
        out = capsys.readouterr().out
        assert "available" in out
        assert "fig09_10_frequent" in out


class TestPlanCommand:
    def test_plan_prints_recommendation(self, capsys):
        code = main(
            [
                "plan",
                "--distinct",
                "3000",
                "--events",
                "30000",
                "-k",
                "50",
                "--target-rate",
                "0.85",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "KB" in out and "LTC.from_memory" in out

    def test_plan_unreachable_target(self, capsys):
        code = main(
            [
                "plan",
                "--distinct",
                "3000",
                "--events",
                "30000",
                "-k",
                "50",
                "--target-rate",
                "0.5",
                "-d",
                "1",  # d=1 makes the bound identically zero → unreachable
            ]
        )
        assert code == 1
        assert "planning failed" in capsys.readouterr().out
