"""Snapshot rotation: retain-N, crash-window atomicity, restore-continue.

The store must never serve a partial file (writes go through a ``.tmp``
rename), must prune to the newest N, must skip corrupt images on
restore, and a restore-then-continue run must be byte-identical to an
uninterrupted one — including mid-period restores (the CLOCK accumulator
round-trips through the v3 header).
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import LTCConfig
from repro.core.kernels import KERNELS, build_ltc
from repro.core.serialize import to_bytes
from repro.serve.oracle import canonical_json, oracle_top_k
from repro.serve.snapshots import SnapshotStore


def _cfg(**kw):
    base = dict(num_buckets=4, bucket_width=2, items_per_period=32)
    base.update(kw)
    return LTCConfig(**base)


class TestRotation:
    def test_retain_n_prunes_oldest(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        ltc = build_ltc(_cfg())
        for i in range(7):
            ltc.insert_many(list(range(i * 10, i * 10 + 10)))
            store.save(ltc)
        names = [p.name for p in store.snapshot_paths()]
        assert names == [
            "snapshot-000000005.ltc",
            "snapshot-000000006.ltc",
            "snapshot-000000007.ltc",
        ]

    def test_sequence_survives_pruning(self, tmp_path):
        # New snapshots keep counting upward even after old ones are gone.
        store = SnapshotStore(tmp_path, retain=1)
        ltc = build_ltc(_cfg())
        for _ in range(3):
            store.save(ltc)
        assert store.snapshot_paths()[0].name == "snapshot-000000003.ltc"

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, retain=0)


class TestCrashWindow:
    def test_partial_tmp_is_ignored(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        ltc = build_ltc(_cfg())
        ltc.insert_many(list(range(40)))
        store.save(ltc)
        # a crash between write and os.replace leaves only a .tmp
        partial = tmp_path / "snapshot-000000009.ltc.tmp"
        partial.write_bytes(to_bytes(ltc)[:17])
        assert all(
            not p.name.endswith(".tmp") for p in store.snapshot_paths()
        )
        restored = store.restore()
        assert restored is not None
        assert to_bytes(restored) == to_bytes(ltc)
        # the next save sweeps the leftover
        store.save(ltc)
        assert not partial.exists()

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        ltc = build_ltc(_cfg())
        ltc.insert_many(list(range(40)))
        good = store.save(ltc)
        ltc.insert_many(list(range(40, 80)))
        bad = store.save(ltc)
        bad.write_bytes(b"LTC3 garbage that will not parse")
        restored = store.restore()
        assert restored is not None
        assert to_bytes(restored) == good.read_bytes()

    def test_all_corrupt_restores_none(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        (tmp_path / "snapshot-000000001.ltc").write_bytes(b"junk")
        assert store.restore() is None

    def test_empty_directory_restores_none(self, tmp_path):
        assert SnapshotStore(tmp_path).restore() is None


class TestRestoreContinue:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_restore_then_continue_byte_identical(self, tmp_path, kernel):
        """Kill mid-stream (and mid-period), restart from the snapshot,
        finish the stream: final answers byte-equal the uninterrupted run."""
        cfg = _cfg(kernel=kernel)
        rng = random.Random(kernel)
        stream = [rng.randrange(50) for _ in range(3000)]
        cut = 1337  # not a period multiple: restores mid-period

        def drive(ltc, events):
            fill = ltc.period_fill
            for item in events:
                ltc.insert(item)
                fill += 1
                if fill == cfg.items_per_period:
                    ltc.end_period()
                    fill = 0

        straight = build_ltc(cfg)
        drive(straight, stream)

        first = build_ltc(cfg)
        drive(first, stream[:cut])
        store = SnapshotStore(tmp_path / kernel, retain=2)
        store.save(first)
        del first

        resumed = store.restore(cls=KERNELS[kernel])
        assert resumed is not None
        assert resumed.period_fill == cut % cfg.items_per_period
        drive(resumed, stream[cut:])

        assert to_bytes(resumed) == to_bytes(straight)
        assert canonical_json(oracle_top_k(resumed, 20)) == canonical_json(
            oracle_top_k(straight, 20)
        )
