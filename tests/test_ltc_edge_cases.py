"""LTC edge cases: empty periods, resumed streams, odd drive patterns."""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.core.ltc import LTC


def fresh(n=4, w=1, d=2, alpha=1.0, beta=1.0, **kw) -> LTC:
    return LTC(
        LTCConfig(
            num_buckets=w,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=n,
            **kw,
        )
    )


class TestEmptyPeriods:
    def test_end_period_without_arrivals(self):
        ltc = fresh()
        ltc.end_period()
        ltc.end_period()
        ltc.finalize()
        assert len(ltc) == 0

    def test_gap_periods_do_not_add_persistency(self):
        ltc = fresh(n=1)
        ltc.insert(5)
        ltc.end_period()
        for _ in range(5):  # five silent periods
            ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(5) == (1, 1)

    def test_item_survives_silence_without_contention(self):
        ltc = fresh(n=1, d=4)
        ltc.insert(5)
        for _ in range(3):
            ltc.end_period()
        ltc.insert(5)
        ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(5) == (2, 2)


class TestDriveRobustness:
    def test_finalize_then_more_inserts(self):
        """Querying mid-stream via finalize is destructive only for flags;
        the structure keeps accepting arrivals afterwards."""
        ltc = fresh(n=2)
        ltc.insert(1)
        ltc.insert(1)
        ltc.end_period()
        ltc.finalize()
        f1, p1 = ltc.estimate(1)
        assert (f1, p1) == (2, 1)
        ltc.insert(1)
        ltc.insert(1)
        ltc.end_period()
        ltc.finalize()
        f2, p2 = ltc.estimate(1)
        assert f2 == 4
        assert p2 == 2

    def test_double_finalize_stable(self):
        ltc = fresh(n=2)
        ltc.insert(1)
        ltc.end_period()
        ltc.finalize()
        state = list(ltc.cells())
        ltc.finalize()
        assert list(ltc.cells()) == state

    def test_single_item_stream(self):
        ltc = fresh(n=1)
        ltc.insert(42)
        ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(42) == (1, 1)
        assert ltc.top_k(5)[0].item == 42

    def test_many_short_periods(self):
        ltc = fresh(n=1, w=2, d=4, alpha=0.0, beta=1.0)
        for period in range(50):
            ltc.insert(7)
            ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(7)[1] == 50

    def test_zero_alpha_items_with_zero_persistency_evictable(self):
        """With α=0 a newly inserted item has significance 0 and is the
        natural first victim — it must be expelled cleanly."""
        ltc = fresh(n=100, d=1, alpha=0.0, beta=1.0)
        ltc.insert(1)  # sig = 0
        ltc.insert(2)  # decrement (already 0) → expel → insert 2
        assert ltc.estimate(1) == (0, 0)
        f, p = ltc.estimate(2)
        assert (f, p) == (1, 0)


class TestSignificanceWeights:
    @pytest.mark.parametrize("alpha,beta", [(0.5, 0.5), (3.0, 7.0), (0.1, 0.0)])
    def test_fractional_weights(self, alpha, beta):
        ltc = fresh(n=4, d=4, alpha=alpha, beta=beta)
        for item in (1, 1, 2, 3):
            ltc.insert(item)
        ltc.end_period()
        ltc.finalize()
        report = ltc.top_k(1)[0]
        assert report.item == 1
        f, p = ltc.estimate(1)
        assert report.significance == pytest.approx(alpha * f + beta * p)

    def test_beta_dominant_prefers_persistent(self):
        ltc = fresh(n=4, w=1, d=2, alpha=1.0, beta=100.0)
        # Period 0: 1 heavy; periods 1-3: 2 present each period.
        for item in (1, 1, 1, 2):
            ltc.insert(item)
        ltc.end_period()
        for _ in range(3):
            for item in (2, 2, 2, 2):
                ltc.insert(item)
            ltc.end_period()
        ltc.finalize()
        top = ltc.top_k(2)
        assert top[0].item == 2
