"""Acceptance differential: every served answer byte-equal to a full scan.

The serving index answers from a dict + lazy heap; the oracle walks
every cell.  For all three kernels, across evictions / Significance
Decrementing / Long-tail Replacement (tiny tables force all of them),
with ingestion running concurrently on the asyncio loop, every
``top_k`` / point-query / ``significant`` response must be **byte**
equal to the oracle's canonical encoding — values, ordering and
tie-breaking included.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.config import LTCConfig
from repro.core.kernels import KERNELS, build_ltc
from repro.serve.oracle import (
    canonical_json,
    oracle_query,
    oracle_significant,
    oracle_top_k,
    query_payload,
    reports_payload,
)
from repro.serve.index import ServingIndex
from repro.serve.server import ServingApp

KERNEL_NAMES = sorted(KERNELS)


def _probe(idx: ServingIndex, ltc, rng: random.Random) -> None:
    """One round of all three query shapes, asserted byte-equal."""
    k = rng.randrange(0, 12)
    served = canonical_json({"k": k, "results": reports_payload(idx.top_k(k))})
    assert served == canonical_json(oracle_top_k(ltc, k))

    item = rng.randrange(0, 60)
    tracked, sig, f, p = idx.query(item)
    served = canonical_json(query_payload(item, tracked, sig, f, p))
    assert served == canonical_json(oracle_query(ltc, item))

    threshold = rng.choice([0.0, 1.0, 3.0, 10.0, 100.0])
    served = canonical_json(
        {"threshold": threshold, "results": reports_payload(idx.significant(threshold))}
    )
    assert served == canonical_json(oracle_significant(ltc, threshold))


class TestServedAnswersByteEqualOracle:
    """Index vs full scan over adversarially small tables."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize(
        "policy", [None, "one", "space-saving"], ids=["longtail", "one", "ss"]
    )
    def test_mixed_stream(self, kernel, policy):
        # 8 cells, 50 distinct items: constant evictions + decrements;
        # the longtail policy also exercises Long-tail Replacement.
        cfg = LTCConfig(
            num_buckets=4,
            bucket_width=2,
            items_per_period=16,
            kernel=kernel,
            replacement_policy=policy,
        )
        ltc = build_ltc(cfg)
        idx = ServingIndex(ltc)
        rng = random.Random(hash((kernel, policy)) & 0xFFFF)
        pos, stream = 0, [rng.randrange(50) for _ in range(4000)]
        while pos < len(stream):
            n = rng.randrange(1, 64)
            ltc.insert_many(stream[pos : pos + n])
            pos += n
            if pos // 300 != (pos - n) // 300:
                ltc.end_period()
            _probe(idx, ltc, rng)
        ltc.end_period()
        ltc.finalize()
        _probe(idx, ltc, rng)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_deviation_eliminator_off(self, kernel):
        cfg = LTCConfig(
            num_buckets=2,
            bucket_width=2,
            items_per_period=8,
            kernel=kernel,
            deviation_eliminator=False,
        )
        ltc = build_ltc(cfg)
        idx = ServingIndex(ltc)
        rng = random.Random(99)
        for _ in range(150):
            ltc.insert_many([rng.randrange(30) for _ in range(rng.randrange(1, 20))])
            _probe(idx, ltc, rng)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_hit_heavy_vectorized_path(self, kernel):
        # Few distinct items on a roomy table: the columnar kernel stays
        # on its all-hit bincount path and slice harvesting.
        cfg = LTCConfig(
            num_buckets=32, bucket_width=4, items_per_period=512, kernel=kernel
        )
        ltc = build_ltc(cfg)
        idx = ServingIndex(ltc)
        rng = random.Random(5)
        hot = list(range(12))
        for _ in range(20):
            ltc.insert_many([rng.choice(hot) for _ in range(2000)])
            _probe(idx, ltc, rng)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_per_event_insert_path(self, kernel):
        cfg = LTCConfig(
            num_buckets=2, bucket_width=2, items_per_period=8, kernel=kernel
        )
        ltc = build_ltc(cfg)
        idx = ServingIndex(ltc)
        rng = random.Random(17)
        for i in range(600):
            ltc.insert(rng.randrange(25))
            if i % 37 == 0:
                _probe(idx, ltc, rng)


class TestConcurrentIngest:
    """The acceptance shape: queries race live ingestion on the loop."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_served_bytes_equal_oracle_under_ingest(self, kernel):
        async def scenario() -> None:
            cfg = LTCConfig(
                num_buckets=4,
                bucket_width=2,
                items_per_period=64,
                kernel=kernel,
            )
            ltc = build_ltc(cfg)
            # check_oracle=True makes the app itself raise OracleMismatch
            # on any divergence, for every request answered.
            app = ServingApp(ltc, check_oracle=True, ingest_chunk=32)
            app.start()
            rng = random.Random(kernel)
            for _ in range(30):
                items = [rng.randrange(60) for _ in range(rng.randrange(50, 400))]
                app.submit(items)
            probes = 0
            while app.queued or probes < 50:
                status, _, _ = app.respond("GET", f"/top_k?k={rng.randrange(0, 9)}")
                assert status == 200
                status, _, _ = app.respond("GET", f"/query/{rng.randrange(70)}")
                assert status == 200
                status, _, _ = app.respond(
                    "GET", f"/significant?threshold={rng.choice([0, 2, 20])}"
                )
                assert status == 200
                probes += 1
                await asyncio.sleep(0)
            await app.shutdown()
            assert app.queued == 0
            assert app.oracle_checks >= 3 * probes
            stats = app.stats()
            assert stats["ingested"] == stats["periods"] * 64 + ltc.period_fill

        asyncio.run(scenario())

    def test_oracle_mismatch_detected(self):
        # The self-check must actually be able to fail: corrupt the
        # index's mirror behind its back and watch the gate trip.
        from repro.serve.server import OracleMismatch

        async def scenario() -> None:
            ltc = build_ltc(
                LTCConfig(num_buckets=4, bucket_width=2, items_per_period=16)
            )
            app = ServingApp(ltc, check_oracle=True)
            app.submit(list(range(10)))
            app.start()
            await app._queue.join()
            app.respond("GET", "/top_k?k=5")  # honest answer passes
            app.index.top_k(1)
            victim = next(
                s for s, key in enumerate(app.index._mirror) if key is not None
            )
            app.index._slot_of.pop(app.index._mirror[victim])
            app.index._mirror[victim] = None  # lie: claim the cell is empty
            with pytest.raises(OracleMismatch):
                app.respond("GET", "/top_k?k=5")
            await app.shutdown()

        asyncio.run(scenario())
