"""Adversarial generators and LTC's robustness to them."""

from __future__ import annotations

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import precision
from repro.streams.adversarial import boundary_straddler, distinct_flood, grinder
from repro.streams.ground_truth import GroundTruth


def run_ltc(stream, alpha=0.0, beta=1.0, buckets=64, **options) -> LTC:
    ltc = LTC(
        LTCConfig(
            num_buckets=buckets,
            bucket_width=8,
            alpha=alpha,
            beta=beta,
            items_per_period=stream.period_length,
            **options,
        )
    )
    stream.run(ltc)
    return ltc


class TestGenerators:
    def test_flood_structure(self):
        stream = distinct_flood(num_periods=5, core_items=10, flood_per_period=100)
        truth = GroundTruth(stream)
        persistent = [i for i in truth.items() if truth.persistency(i) == 5]
        assert len(persistent) == 10
        # The flood is one-hit wonders.
        singles = sum(1 for i in truth.items() if truth.frequency(i) == 1)
        assert singles >= 480

    def test_grinder_structure(self):
        stream = grinder(num_periods=4, targets=5, grind_burst=10)
        truth = GroundTruth(stream)
        targets = [i for i in truth.items() if truth.persistency(i) == 4]
        assert len(targets) == 5

    def test_straddler_structure(self):
        stream = boundary_straddler(num_periods=6, stradlers=8)
        truth = GroundTruth(stream)
        stradler_items = [i for i in truth.items() if truth.frequency(i) >= 12]
        assert len(stradler_items) == 8
        assert all(truth.persistency(i) == 6 for i in stradler_items)

    def test_generators_deterministic(self):
        assert distinct_flood(seed=1).events == distinct_flood(seed=1).events
        assert grinder(seed=2).events == grinder(seed=2).events


class TestLTCRobustness:
    def test_core_survives_distinct_flood_in_significance_mode(self):
        """With α > 0 the core's frequency keeps its cells defended even
        while a one-hit-wonder flood supplies 4× the arrival volume."""
        stream = distinct_flood(num_periods=20, core_items=30, flood_per_period=600)
        truth = GroundTruth(stream)
        exact = truth.top_k_items(30, 1.0, 50.0)
        ltc = run_ltc(stream, alpha=1.0, beta=50.0)
        reported = {r.item for r in ltc.top_k(30)}
        assert len(reported & exact) / 30 >= 0.95

    def test_pure_persistency_mode_is_flood_sensitive(self):
        """β-only mode protects incumbents by persistency alone, which
        accrues once per period — so the same flood costs real precision.
        A documented weakness, not a bug: α > 0 is the mitigation."""
        stream = distinct_flood(num_periods=20, core_items=30, flood_per_period=600)
        truth = GroundTruth(stream)
        exact = truth.top_k_items(30, 0.0, 1.0)
        ltc = run_ltc(stream, alpha=0.0, beta=1.0)
        reported = {r.item for r in ltc.top_k(30)}
        rate = len(reported & exact) / 30
        assert 0.4 <= rate < 0.95

    def test_grinding_suppresses_but_never_inflates(self):
        """A 40:1 grind legitimately evicts low-rate targets (decrement
        pressure exceeds their accrual) — but the attack can only
        *suppress*: every reported estimate stays exact or below truth,
        so the attacker cannot forge significance."""
        stream = grinder(num_periods=20, targets=15, grind_burst=40)
        truth = GroundTruth(stream)
        ltc = run_ltc(
            stream, alpha=1.0, beta=1.0, buckets=16, longtail_replacement=False
        )
        exact = truth.top_k_items(15, 1.0, 1.0)
        suppressed = precision((r.item for r in ltc.top_k(15)), exact)
        assert suppressed < 0.9  # the attack does real damage...
        for report in ltc.top_k(50):  # ...but never fabricates mass
            assert report.significance <= truth.significance(
                report.item, 1.0, 1.0
            )

    def test_grinding_pressure_curve_monotone(self):
        """Damage grows with the attacker's per-target burst budget."""
        def survivors(burst: int) -> float:
            stream = grinder(num_periods=10, targets=15, grind_burst=burst)
            truth = GroundTruth(stream)
            exact = truth.top_k_items(15, 1.0, 1.0)
            ltc = run_ltc(stream, alpha=1.0, beta=1.0, buckets=16)
            return precision((r.item for r in ltc.top_k(15)), exact)

        gentle = survivors(2)
        brutal = survivors(60)
        assert gentle >= 0.9
        assert brutal <= gentle

    def test_de_exact_on_boundary_straddlers(self):
        """The two-flag version counts straddlers exactly; the one-flag
        version cannot overcount past T but deviates on the estimates."""
        stream = boundary_straddler(num_periods=20, stradlers=10)
        truth = GroundTruth(stream)
        ltc = run_ltc(stream, buckets=96)
        for item, sig in truth.top_k(10, 0.0, 1.0):
            assert ltc.estimate(item)[1] <= truth.persistency(item)
        # With ample capacity the straddlers are tracked exactly.
        exact_hits = sum(
            1
            for item, sig in truth.top_k(10, 0.0, 1.0)
            if ltc.estimate(item)[1] == truth.persistency(item)
        )
        assert exact_hits >= 9
