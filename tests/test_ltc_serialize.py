"""LTC serialization: state and binary round-trips."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.core.serialize import from_bytes, from_state, to_bytes, to_state
from tests.conftest import make_stream


def build_ltc(events, num_periods=4, **overrides) -> LTC:
    cfg = dict(
        num_buckets=3,
        bucket_width=4,
        alpha=1.0,
        beta=2.0,
        items_per_period=max(1, len(events) // num_periods),
        seed=0xABC,
    )
    cfg.update(overrides)
    ltc = LTC(LTCConfig(**cfg))
    stream = make_stream(events, num_periods=min(num_periods, max(len(events), 1)))
    for period in stream.iter_periods():
        for item in period:
            ltc.insert(item)
        ltc.end_period()
    return ltc  # intentionally NOT finalized: mid-stream checkpoint


def snapshots_equal(a: LTC, b: LTC) -> bool:
    return list(a.cells()) == list(b.cells())


class TestStateRoundTrip:
    def test_cells_survive(self):
        ltc = build_ltc([1, 2, 1, 3, 1, 2, 4, 5])
        restored = from_state(to_state(ltc))
        assert snapshots_equal(ltc, restored)

    def test_json_safe(self):
        import json

        ltc = build_ltc([1, 2, 3])
        blob = json.dumps(to_state(ltc))
        restored = from_state(json.loads(blob))
        assert snapshots_equal(ltc, restored)

    def test_rejects_mismatched_cells(self):
        state = to_state(build_ltc([1, 2]))
        state["cells"] = state["cells"][:-1]
        with pytest.raises(ValueError):
            from_state(state)

    def test_resumed_ltc_continues_identically(self):
        """A checkpoint/restore mid-stream must not change the outcome."""
        rng = random.Random(3)
        events = [rng.randrange(30) for _ in range(400)]
        half = len(events) // 2

        straight = build_ltc(events, num_periods=8)

        first = build_ltc(events[:half], num_periods=4)
        resumed = from_state(to_state(first))
        stream2 = make_stream(events[half:], num_periods=4)
        for period in stream2.iter_periods():
            for item in period:
                resumed.insert(item)
            resumed.end_period()

        assert snapshots_equal(straight, resumed)


class TestBytesRoundTrip:
    def test_cells_survive(self):
        ltc = build_ltc([5, 5, 6, 7, 8, 5])
        restored = from_bytes(to_bytes(ltc))
        assert snapshots_equal(ltc, restored)

    def test_config_survives(self):
        ltc = build_ltc(
            [1, 2, 3],
            deviation_eliminator=False,
            replacement_policy="space-saving",
            seed=99,
        )
        restored = from_bytes(to_bytes(ltc))
        assert restored.config == ltc.config

    def test_queries_survive(self):
        ltc = build_ltc([1, 1, 2, 3, 1, 2])
        restored = from_bytes(to_bytes(ltc))
        for item in (1, 2, 3, 99):
            assert restored.estimate(item) == ltc.estimate(item)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            from_bytes(b"XXXX" + b"\x00" * 64)

    def test_trailing_bytes_rejected(self):
        blob = to_bytes(build_ltc([1]))
        with pytest.raises(ValueError, match="trailing"):
            from_bytes(blob + b"\x00")

    def test_size_matches_cell_count(self):
        ltc = build_ltc([1, 2, 3])
        blob = to_bytes(ltc)
        from repro.core.serialize import _CELL, _HEADER

        assert len(blob) == _HEADER.size + ltc.total_cells * _CELL.size

    @given(st.lists(st.integers(0, 40), max_size=200), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, events, periods):
        ltc = build_ltc(events, num_periods=max(1, min(periods, len(events) or 1)))
        restored = from_bytes(to_bytes(ltc))
        assert snapshots_equal(ltc, restored)
        # And the restored structure keeps working.
        restored.insert(7)
        ltc.insert(7)
        assert snapshots_equal(ltc, restored)


class TestTimedStateRoundTrip:
    """The timed-mode fields: ``_clock._tacc`` and ``LTC._last_timestamp``."""

    def drive_timed(self, ltc: LTC, arrivals) -> None:
        for item, ts in arrivals:
            ltc.insert_timed(item, ts, period_seconds=1.0)

    def timed_ltc(self) -> LTC:
        ltc = LTC(
            LTCConfig(
                num_buckets=2, bucket_width=4, alpha=1.0, beta=2.0,
                items_per_period=1,
            )
        )
        self.drive_timed(ltc, [(1, 0.0), (2, 0.35), (1, 0.61), (3, 1.07)])
        return ltc

    @pytest.mark.parametrize(
        "roundtrip",
        [lambda l: from_state(to_state(l)), lambda l: from_bytes(to_bytes(l))],
        ids=["state", "bytes"],
    )
    def test_tacc_and_timestamp_survive(self, roundtrip):
        ltc = self.timed_ltc()
        restored = roundtrip(ltc)
        assert restored._clock._tacc == ltc._clock._tacc
        assert restored._last_timestamp == ltc._last_timestamp
        assert snapshots_equal(ltc, restored)

    @pytest.mark.parametrize(
        "roundtrip",
        [lambda l: from_state(to_state(l)), lambda l: from_bytes(to_bytes(l))],
        ids=["state", "bytes"],
    )
    def test_restored_rejects_backwards_timestamps(self, roundtrip):
        restored = roundtrip(self.timed_ltc())
        with pytest.raises(ValueError, match="non-decreasing"):
            restored.insert_timed(9, 0.5, period_seconds=1.0)

    def test_untimed_ltc_roundtrips_without_timestamp(self):
        ltc = build_ltc([1, 2, 3])
        restored = from_bytes(to_bytes(ltc))
        assert restored._last_timestamp is None

    def test_state_without_timed_fields_still_restores(self):
        """Dict states written by the v1 format lack the timed-mode
        accumulator and last_timestamp; they restore with fresh defaults."""
        state = to_state(build_ltc([1, 2, 1]))
        del state["last_timestamp"]
        del state["clock"]["tacc"]
        restored = from_state(state)
        assert restored._clock._tacc == 0
        assert restored._last_timestamp is None

    def test_legacy_facc_state_restores_as_ticks(self):
        """Dict states written by the v2 format carry a float ``facc``;
        it restores as the nearest integer tick count."""
        from repro.core.clock import ClockPointer

        state = to_state(self.timed_ltc())
        tacc = state["clock"].pop("tacc")
        state["clock"]["facc"] = tacc / ClockPointer.TICKS_PER_PERIOD
        restored = from_state(state)
        assert restored._clock._tacc == tacc


class TestSubclassRestore:
    """``cls=`` revives engineering subclasses with their index rebuilt."""

    def fast_ltc(self):
        from repro.core.fast_ltc import FastLTC

        fast = FastLTC(
            LTCConfig(
                num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
                items_per_period=5,
            )
        )
        stream = make_stream([1, 2, 1, 3, 1, 2, 4, 5, 1, 6], num_periods=2)
        stream.run(fast)
        return fast

    @pytest.mark.parametrize(
        "roundtrip",
        [
            lambda l, cls: from_state(to_state(l), cls=cls),
            lambda l, cls: from_bytes(to_bytes(l), cls=cls),
        ],
        ids=["state", "bytes"],
    )
    def test_fast_ltc_roundtrip(self, roundtrip):
        from repro.core.fast_ltc import FastLTC

        fast = self.fast_ltc()
        restored = roundtrip(fast, FastLTC)
        assert type(restored) is FastLTC
        assert snapshots_equal(fast, restored)
        assert restored._slot_of == fast._slot_of

    def test_restored_fast_ltc_continues_identically(self):
        from repro.core.fast_ltc import FastLTC

        fast = self.fast_ltc()
        restored = from_bytes(to_bytes(fast), cls=FastLTC)
        for item in (1, 7, 1, 8, 2):
            fast.insert(item)
            restored.insert(item)
        assert snapshots_equal(fast, restored)
        assert restored._slot_of == fast._slot_of

    @pytest.mark.parametrize(
        "roundtrip",
        [
            lambda l, cls: from_state(to_state(l), cls=cls),
            lambda l, cls: from_bytes(to_bytes(l), cls=cls),
        ],
        ids=["state", "bytes"],
    )
    def test_columnar_ltc_roundtrip(self, roundtrip):
        from repro.core.columnar import ColumnarLTC

        columnar = roundtrip(self.fast_ltc(), ColumnarLTC)
        assert type(columnar) is ColumnarLTC
        assert snapshots_equal(self.fast_ltc(), columnar)
        assert columnar._slot_of == self.fast_ltc()._slot_of

    def test_restored_columnar_ltc_continues_identically(self):
        from repro.core.columnar import ColumnarLTC

        fast = self.fast_ltc()
        restored = from_bytes(to_bytes(fast), cls=ColumnarLTC)
        restored.insert_many([1, 7, 1, 8, 2])
        for item in (1, 7, 1, 8, 2):
            fast.insert(item)
        assert snapshots_equal(fast, restored)

    def test_default_cls_is_reference_ltc(self):
        restored = from_bytes(to_bytes(self.fast_ltc()))
        assert type(restored) is LTC


class TestCorruptionRobustness:
    def test_truncated_blob_rejected(self):
        blob = to_bytes(build_ltc([1, 2, 3]))
        with pytest.raises((ValueError, Exception)):
            from_bytes(blob[: len(blob) // 2])

    def test_corrupt_policy_code_rejected(self):
        blob = bytearray(to_bytes(build_ltc([1, 2, 3])))
        # Policy-code byte offset in "<4sIIddIBBBxIIIqQ":
        # 4+4+4+8+8+4 (through items_per_period) + 2 (de, ltr) = 34.
        blob[34] = 250
        with pytest.raises((KeyError, ValueError)):
            from_bytes(bytes(blob))

    def test_header_only_blob_rejected(self):
        from repro.core.serialize import _HEADER

        blob = to_bytes(build_ltc([1]))
        with pytest.raises(Exception):
            from_bytes(blob[: _HEADER.size - 1])


class TestFormatStability:
    """Golden-image tests: the binary layout is a persistence format, so
    accidental drift (field reorder, width change) must fail loudly.

    ``GOLDEN_HEX_V3`` pins the current write format; ``GOLDEN_HEX_V1``
    and ``GOLDEN_HEX_V2`` are legacy ``LTC1``/``LTC2`` images that must
    stay readable forever (v1 predates the timed-mode fields, which
    restore as fresh defaults; v2 carries them with a float accumulator
    that restores via tick conversion).
    """

    GOLDEN_HEX_V1 = (
        "4c5443310100000002000000000000000000f03f0000000000000040030000000101"
        "0000010000000000000000000000000000000000000007000000000000000a000000"
        "000000000200000000000000010b00000000000000010000000000000001"
    )
    GOLDEN_HEX_V2 = (
        "4c5443320100000002000000000000000000f03f0000000000000040030000000101"
        "00000100000000000000000000000000000000000000070000000000000000000000"
        "000000000000000000000000000a000000000000000200000000000000010b000000"
        "00000000010000000000000001"
    )
    GOLDEN_HEX_V3 = (
        "4c5443330100000002000000000000000000f03f0000000000000040030000000101"
        "00000100000000000000000000000000000000000000070000000000000000000000"
        "000000000000000000000000000a000000000000000200000000000000010b000000"
        "00000000010000000000000001"
    )

    def make_golden_ltc(self) -> LTC:
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=1.0,
                beta=2.0,
                items_per_period=3,
                seed=7,
            )
        )
        for item in (10, 10, 11):
            ltc.insert(item)
        ltc.end_period()
        return ltc

    def test_serialisation_matches_golden_image(self):
        assert to_bytes(self.make_golden_ltc()).hex() == self.GOLDEN_HEX_V3

    def test_golden_image_deserialises(self):
        restored = from_bytes(bytes.fromhex(self.GOLDEN_HEX_V3))
        assert restored.estimate(10) == (2, 0)
        assert restored.estimate(11) == (1, 0)
        assert restored.config.beta == 2.0

    @pytest.mark.parametrize("hex_name", ["GOLDEN_HEX_V1", "GOLDEN_HEX_V2"])
    def test_legacy_golden_images_still_readable(self, hex_name):
        restored = from_bytes(bytes.fromhex(getattr(self, hex_name)))
        assert restored.estimate(10) == (2, 0)
        assert restored.estimate(11) == (1, 0)
        assert restored.config.beta == 2.0
        assert restored._clock._tacc == 0
        assert restored._last_timestamp is None

    def test_legacy_images_equivalent_for_count_based_state(self):
        """v1/v2 images of a count-driven LTC restore to the same cells
        and CLOCK phase as the v3 image of the same structure."""
        via_v1 = from_bytes(bytes.fromhex(self.GOLDEN_HEX_V1))
        via_v2 = from_bytes(bytes.fromhex(self.GOLDEN_HEX_V2))
        via_v3 = from_bytes(bytes.fromhex(self.GOLDEN_HEX_V3))
        assert list(via_v1.cells()) == list(via_v2.cells()) == list(via_v3.cells())
        assert via_v1._clock.hand == via_v2._clock.hand == via_v3._clock.hand
        assert via_v1._clock._acc == via_v2._clock._acc == via_v3._clock._acc


class TestSeedRoundTrip:
    """Regression: `to_bytes` stores the 64-bit-masked seed, so a config
    built with a negative or >64-bit seed must already be normalized at
    construction — otherwise the restored checkpoint's config differs
    from its live siblings' and `_check_compatible` refuses to merge
    them (the restore-then-merge flow of the distributed coordinators)."""

    @pytest.mark.parametrize("seed", [-1, 2**64 + 17])
    def test_seed_normalized_at_construction(self, seed):
        cfg = LTCConfig(num_buckets=3, bucket_width=4, items_per_period=4, seed=seed)
        assert cfg.seed == seed & 0xFFFFFFFFFFFFFFFF
        assert 0 <= cfg.seed < 2**64

    @pytest.mark.parametrize("seed", [-1, 2**64 + 17])
    def test_checkpoint_restore_then_merge(self, seed):
        from repro.core.merge import merge

        events = [i % 17 for i in range(160)]
        original = build_ltc(events, seed=seed)
        restored = from_bytes(to_bytes(original))
        assert restored.config == original.config
        assert snapshots_equal(original, restored)
        merged = merge([original, restored], num_periods=4)
        # Doubling via self-merge: every estimate doubles (clipped to
        # the period count on the persistency side).
        for item in original.items():
            f, p = original.estimate(item)
            bits = original._flags[
                next(j for j, k in enumerate(original._keys) if k == item)
            ]
            pending = (bits & 1) + (bits >> 1 & 1)
            mf, mp = merged.estimate(item)
            assert mf == 2 * f
            assert mp == min(2 * (p + pending), 4)

    @pytest.mark.parametrize("seed", [-1, 2**64 + 17])
    def test_state_roundtrip_preserves_config(self, seed):
        original = build_ltc([1, 2, 3, 4, 5, 6], seed=seed)
        restored = from_state(to_state(original))
        assert restored.config == original.config

    def test_masked_and_raw_seed_hash_identically(self):
        """The normalization is behavior-preserving: splitmix64 already
        reduced seeds modulo 2**64, so the bucket layout is unchanged."""
        raw = LTC(
            LTCConfig(num_buckets=8, bucket_width=2, items_per_period=8, seed=-1)
        )
        masked = LTC(
            LTCConfig(
                num_buckets=8, bucket_width=2, items_per_period=8, seed=2**64 - 1
            )
        )
        for i in range(100):
            raw.insert(i)
            masked.insert(i)
        assert list(raw.cells()) == list(masked.cells())
