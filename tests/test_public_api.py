"""Public API surface: exports resolve, docstrings exist, version sane."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.summaries",
    "repro.sketches",
    "repro.membership",
    "repro.codes",
    "repro.persistent",
    "repro.combined",
    "repro.streams",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.hashing",
    "repro.obs",
    "repro.serve",
]


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name}"
            )

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_headline_classes_documented(self):
        for cls in (
            repro.LTC,
            repro.FastLTC,
            repro.WindowedLTC,
            repro.SpaceSaving,
            repro.PIE,
            repro.CountMinSketch,
            repro.BloomFilter,
        ):
            assert cls.__doc__
            for method_name in ("insert", "top_k", "query"):
                method = getattr(cls, method_name, None)
                if method is not None:
                    assert method.__doc__ or method_name in (
                        "insert",
                    ), f"{cls.__name__}.{method_name}"


class TestSummaryProtocolConformance:
    """Every advertised summary drives through PeriodicStream.run."""

    def test_all_summaries_runnable(self):
        from repro import (
            LTC,
            LTCConfig,
            CountMinSketch,
            Frequent,
            LossyCounting,
            PIE,
            SketchPersistent,
            SketchTopK,
            SpaceSaving,
            TwoStructureSignificant,
            WindowedLTC,
            BloomFilter,
        )
        from repro.persistent.small_space import SmallSpacePersistent
        from tests.conftest import make_stream

        stream = make_stream([1, 2, 1, 3, 1, 2] * 5, num_periods=3)
        summaries = [
            LTC(LTCConfig(num_buckets=2, items_per_period=stream.period_length)),
            WindowedLTC(num_buckets=2, window=3),
            SpaceSaving(8),
            LossyCounting(8),
            Frequent(8),
            SketchTopK(CountMinSketch(64), 5),
            PIE(cells_per_period=128),
            SketchPersistent(CountMinSketch(64), BloomFilter(256), 5),
            SmallSpacePersistent(capacity=16, sample_rate=1.0),
            TwoStructureSignificant(
                CountMinSketch(64), CountMinSketch(64), BloomFilter(256), 5, 1, 1
            ),
        ]
        for summary in summaries:
            stream.run(summary)
            top = summary.top_k(3)
            assert len(top) <= 3
            for report in top:
                assert summary.query(report.item) is not None
