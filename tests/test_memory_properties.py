"""Property-based tests of the memory model's sizing rules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.memory import (
    COUNTER_CELL_BYTES,
    LTC_CELL_BYTES,
    STBF_CELL_BYTES,
    MemoryBudget,
)

budgets = st.integers(64, 10_000_000).map(MemoryBudget)


class TestSizingProperties:
    @given(budgets, st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_ltc_never_exceeds_budget(self, budget, d):
        cells = budget.ltc_buckets(d) * d
        # Sizing may round the bucket count down to at least one bucket;
        # above that floor it must respect the budget.
        if budget.ltc_buckets(d) > 1:
            assert cells * LTC_CELL_BYTES <= budget.total_bytes

    @given(budgets)
    @settings(max_examples=100, deadline=None)
    def test_counter_cells_fit(self, budget):
        assert (
            budget.counter_cells() * COUNTER_CELL_BYTES <= budget.total_bytes
            or budget.counter_cells() == 1
        )

    @given(budgets)
    @settings(max_examples=100, deadline=None)
    def test_stbf_cells_fit(self, budget):
        assert (
            budget.stbf_cells() * STBF_CELL_BYTES <= budget.total_bytes
            or budget.stbf_cells() == 1
        )

    @given(budgets, st.integers(1, 5), st.integers(0, 2_000))
    @settings(max_examples=100, deadline=None)
    def test_sketch_width_monotone_in_budget(self, budget, rows, heap_k):
        bigger = MemoryBudget(budget.total_bytes * 2)
        assert bigger.sketch_width(rows, heap_k) >= budget.sketch_width(
            rows, heap_k
        )

    @given(budgets)
    @settings(max_examples=100, deadline=None)
    def test_halves_conserve(self, budget):
        a, b = budget.halves()
        assert a.total_bytes + b.total_bytes <= budget.total_bytes + 2

    @given(budgets, st.floats(0.05, 0.95))
    @settings(max_examples=100, deadline=None)
    def test_split_fractions(self, budget, f):
        a, b = budget.split(f, 1.0 - f)
        assert a.total_bytes + b.total_bytes <= budget.total_bytes + 2
        assert a.total_bytes >= 1 and b.total_bytes >= 1

    @given(budgets)
    @settings(max_examples=50, deadline=None)
    def test_monotone_cells(self, budget):
        bigger = MemoryBudget(budget.total_bytes + 4096)
        assert bigger.counter_cells() >= budget.counter_cells()
        assert bigger.ltc_buckets(8) >= budget.ltc_buckets(8)
        assert bigger.bloom_bits() >= budget.bloom_bits()
