"""Lossy Counting: pruning rule, hard cap, and error guarantee."""

from __future__ import annotations

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.summaries.lossy_counting import LossyCounting


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LossyCounting(0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LossyCounting(10, epsilon=0.0)

    def test_default_epsilon(self):
        lc = LossyCounting(100)
        assert lc.epsilon == 0.02
        assert lc.bucket_width == 50

    def test_from_memory(self):
        lc = LossyCounting.from_memory(MemoryBudget(kb(1)))
        assert lc.capacity == 128


class TestGuarantees:
    def test_underestimates_only(self, small_zipf, small_zipf_truth):
        """LC counts from entry creation, so f̂ ≤ f always."""
        lc = LossyCounting(capacity=128)
        small_zipf.run(lc)
        for report in lc.top_k(128):
            assert report.frequency <= small_zipf_truth.frequency(report.item)

    def test_epsilon_error_bound_for_survivors(self, small_zipf, small_zipf_truth):
        """Classic LC guarantee: f − f̂ ≤ εN for surviving entries."""
        lc = LossyCounting(capacity=512)
        small_zipf.run(lc)
        allowance = lc.epsilon * len(small_zipf) + lc.bucket_width
        for report in lc.top_k(512):
            real = small_zipf_truth.frequency(report.item)
            assert real - report.frequency <= allowance

    def test_heavy_hitters_survive(self, small_zipf, small_zipf_truth):
        lc = LossyCounting(capacity=256)
        small_zipf.run(lc)
        reported = {r.item for r in lc.top_k(256)}
        for item, _ in small_zipf_truth.top_k(10, 1.0, 0.0):
            assert item in reported

    def test_capacity_never_exceeded(self):
        lc = LossyCounting(capacity=50)
        for item in range(5_000):
            lc.insert(item)
            assert len(lc) <= 50


class TestBehaviour:
    def test_repeated_item_counts(self):
        lc = LossyCounting(capacity=10)
        for _ in range(7):
            lc.insert(1)
        assert lc.query(1) == 7.0

    def test_query_unknown(self):
        lc = LossyCounting(capacity=10)
        assert lc.query(123) == 0.0

    def test_pruning_drops_singletons(self):
        """After a full bucket of distinct items, singletons are pruned."""
        lc = LossyCounting(capacity=1_000, epsilon=0.1)  # bucket width 10
        for item in range(10):
            lc.insert(item)
        # Boundary hit at the 10th insert: entries with count + Δ ≤ 1 go.
        assert len(lc) == 0

    def test_frequent_item_survives_pruning(self):
        lc = LossyCounting(capacity=1_000, epsilon=0.1)
        for i in range(10):
            lc.insert(1 if i % 2 == 0 else 100 + i)
        assert lc.query(1) > 0
