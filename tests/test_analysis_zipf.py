"""Zipf model of §IV (Eq. 3)."""

from __future__ import annotations

import pytest

from repro.analysis.zipf import zeta, zipf_model_frequencies


class TestZeta:
    def test_gamma_zero(self):
        assert zeta(0.0, 5) == 5.0

    def test_gamma_one(self):
        assert zeta(1.0, 3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zeta(1.0, 0)

    def test_monotone_in_items(self):
        assert zeta(1.0, 100) > zeta(1.0, 50)


class TestModelFrequencies:
    def test_sum_equals_total(self):
        freqs = zipf_model_frequencies(10_000, 200, 1.0)
        assert sum(freqs) == pytest.approx(10_000)

    def test_non_increasing(self):
        freqs = zipf_model_frequencies(1_000, 100, 0.8)
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_rank_one_value(self):
        freqs = zipf_model_frequencies(1_000, 50, 1.0)
        assert freqs[0] == pytest.approx(1_000 / zeta(1.0, 50))

    def test_matches_eq3_ratio(self):
        """f_i / f_j = (j/i)^γ exactly."""
        gamma = 1.3
        freqs = zipf_model_frequencies(5_000, 100, gamma)
        assert freqs[1] / freqs[3] == pytest.approx((4 / 2) ** gamma)
