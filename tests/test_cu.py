"""CU sketch: conservative update dominates Count-Min.

The batch paths (``update_many`` / ``update_and_query_many``) run the
sort-and-segment fixpoint kernel from ``_vectorized.py``; every test in
:class:`TestBatchKernel` pins them table-for-table (and answer-for-
answer) against a per-event replay, including the regimes the kernel
finds hardest: duplicate-heavy batches, width-1 total collision,
``counts=`` folding, and the forced non-convergence bail-out.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import cu as cu_module
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch


class TestGuarantees:
    def test_never_underestimates(self, small_zipf, small_zipf_truth):
        sketch = CUSketch(width=256, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        for item in small_zipf_truth.items()[:400]:
            assert sketch.query(item) >= small_zipf_truth.frequency(item)

    def test_estimates_never_above_cm(self, small_zipf):
        """CU's estimate is pointwise ≤ CM's under identical hashing."""
        cm = CountMinSketch(width=128, rows=3, seed=7)
        cu = CUSketch(width=128, rows=3, seed=7)
        for item in small_zipf.events:
            cm.update(item)
            cu.update(item)
        for item in set(small_zipf.events[:1000]):
            assert cu.query(item) <= cm.query(item)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_sandwich_property(self, events):
        """true ≤ CU ≤ CM on any insert-only stream."""
        cm = CountMinSketch(width=16, rows=2, seed=3)
        cu = CUSketch(width=16, rows=2, seed=3)
        for item in events:
            cm.update(item)
            cu.update(item)
        for item, real in Counter(events).items():
            assert real <= cu.query(item) <= cm.query(item)


class TestBehaviour:
    def test_rejects_decrement(self):
        with pytest.raises(ValueError):
            CUSketch(width=8).update(1, delta=-1)

    def test_zero_delta_noop(self):
        sketch = CUSketch(width=8)
        sketch.update(1, delta=0)
        assert sketch.query(1) == 0

    def test_update_and_query(self):
        sketch = CUSketch(width=64)
        assert sketch.update_and_query(4) == 1
        assert sketch.update_and_query(4) == 2

    def test_delta_update(self):
        sketch = CUSketch(width=64)
        sketch.update(1, delta=5)
        assert sketch.query(1) == 5


def replay_pair(width=8, rows=2, seed=5):
    """Two identically-hashed sketches: one for the batch path, one for
    the per-event reference replay."""
    return (
        CUSketch(width=width, rows=rows, seed=seed),
        CUSketch(width=width, rows=rows, seed=seed),
    )


def assert_tables_equal(batched: CUSketch, scalar: CUSketch) -> None:
    assert [list(t) for t in batched._tables] == [
        list(t) for t in scalar._tables
    ]


class TestBatchKernel:
    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=300),
        st.integers(1, 3),
        st.integers(2, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_duplicate_heavy_batches_replay_identical(
        self, keys, rows, width
    ):
        """A 7-key universe over a tiny table maximises both same-key
        chains and cross-key collisions."""
        batched, scalar = replay_pair(width=width, rows=rows)
        batched.update_many(keys)
        for key in keys:
            scalar.update(key)
        assert_tables_equal(batched, scalar)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_width_one_total_collision(self, keys):
        """Width 1: every event chains on every other."""
        batched, scalar = replay_pair(width=1, rows=2)
        batched.update_many(keys)
        for key in keys:
            scalar.update(key)
        assert_tables_equal(batched, scalar)

    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=100),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_and_query_many_answers(self, keys, data):
        counts = data.draw(
            st.one_of(
                st.none(),
                st.lists(
                    st.integers(0, 5),
                    min_size=len(keys),
                    max_size=len(keys),
                ),
            )
        )
        batched, scalar = replay_pair()
        got = batched.update_and_query_many(keys, counts=counts)
        expected = []
        folded = (
            zip(keys, [1] * len(keys)) if counts is None else zip(keys, counts)
        )
        for key, count in folded:
            if count:
                expected.append(scalar.update_and_query(key, count))
            else:
                expected.append(scalar.query(key))
        assert got == expected
        assert_tables_equal(batched, scalar)

    def test_chunk_boundary_replay_identical(self):
        """Batches larger than the kernel chunk commit chunk by chunk;
        the sequencing across the boundary must stay exact."""
        import random

        rng = random.Random(23)
        keys = [rng.randrange(9) for _ in range(2 * cu_module._CHUNK + 123)]
        batched, scalar = replay_pair(width=8, rows=2)
        answers = batched.update_and_query_many(keys)
        expected = [scalar.update_and_query(key) for key in keys]
        assert answers == expected
        assert_tables_equal(batched, scalar)

    def test_counts_matches_expansion(self):
        batched, scalar = replay_pair()
        batched.update_many([3, 5, 3, 7], counts=[4, 0, 2, 1])
        for key, count in [(3, 4), (5, 0), (3, 2), (7, 1)]:
            for _ in range(count):
                scalar.update(key)
        assert_tables_equal(batched, scalar)

    def test_counts_with_delta(self):
        batched, scalar = replay_pair()
        batched.update_many([1, 2, 1], delta=3, counts=[2, 1, 2])
        for key, count in [(1, 2), (2, 1), (1, 2)]:
            for _ in range(count):
                scalar.update(key, 3)
        assert_tables_equal(batched, scalar)

    def test_negative_counts_rejected(self):
        sketch = CUSketch(width=8)
        with pytest.raises(ValueError):
            sketch.update_many([1, 2], counts=[1, -1])
        with pytest.raises(ValueError):
            sketch.update_and_query_many([1, 2], counts=[1, -1])

    def test_counts_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CUSketch(width=8).update_many([1, 2, 3], counts=[1, 2])

    def test_batch_rejects_negative_delta(self):
        sketch = CUSketch(width=8)
        with pytest.raises(ValueError):
            sketch.update_many([1], delta=-1)
        with pytest.raises(ValueError):
            sketch.update_and_query_many([1], delta=-1)

    def test_zero_delta_batch_is_query_only(self):
        sketch = CUSketch(width=8)
        sketch.update_many([1, 1, 2])
        before = [list(t) for t in sketch._tables]
        sketch.update_many([1, 2, 3], delta=0)
        answers = sketch.update_and_query_many([1, 2, 3], delta=0)
        assert answers == [sketch.query(k) for k in [1, 2, 3]]
        assert [list(t) for t in sketch._tables] == before

    def test_empty_batch(self):
        sketch = CUSketch(width=8)
        sketch.update_many([])
        assert sketch.update_and_query_many([]) == []

    def test_numpy_absent_fallback_with_counts(self, monkeypatch):
        monkeypatch.setattr(cu_module, "numpy_available", lambda: False)
        batched, scalar = replay_pair()
        batched.update_many([3, 5, 3], counts=[2, 0, 1])
        answers = batched.update_and_query_many([3, 9], counts=[1, 0])
        for key, count in [(3, 2), (5, 0), (3, 1)]:
            if count:
                scalar.update(key, count)
        expected = [scalar.update_and_query(3), scalar.query(9)]
        assert answers == expected
        assert_tables_equal(batched, scalar)

    def test_nonconvergence_falls_back_to_scalar(self, monkeypatch):
        """With the pass budget forced to zero the kernel must return
        None without touching the tables; the scalar replay then
        produces the exact sequential result anyway."""
        monkeypatch.setattr(cu_module, "_MAX_PASSES", 0)
        batched, scalar = replay_pair(width=4, rows=2)
        keys = [1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 4, 4]
        assert batched._batch_targets(
            cu_module.as_key_array(keys),
            cu_module._np.ones(len(keys), dtype=cu_module._np.int64),
        ) is None
        assert all(not any(t) for t in batched._tables)
        batched.update_many(keys)
        answers = batched.update_and_query_many(keys)
        for key in keys:
            scalar.update(key)
        expected = [scalar.update_and_query(key) for key in keys]
        assert answers == expected
        assert_tables_equal(batched, scalar)
