"""CU sketch: conservative update dominates Count-Min."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch


class TestGuarantees:
    def test_never_underestimates(self, small_zipf, small_zipf_truth):
        sketch = CUSketch(width=256, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        for item in small_zipf_truth.items()[:400]:
            assert sketch.query(item) >= small_zipf_truth.frequency(item)

    def test_estimates_never_above_cm(self, small_zipf):
        """CU's estimate is pointwise ≤ CM's under identical hashing."""
        cm = CountMinSketch(width=128, rows=3, seed=7)
        cu = CUSketch(width=128, rows=3, seed=7)
        for item in small_zipf.events:
            cm.update(item)
            cu.update(item)
        for item in set(small_zipf.events[:1000]):
            assert cu.query(item) <= cm.query(item)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_sandwich_property(self, events):
        """true ≤ CU ≤ CM on any insert-only stream."""
        cm = CountMinSketch(width=16, rows=2, seed=3)
        cu = CUSketch(width=16, rows=2, seed=3)
        for item in events:
            cm.update(item)
            cu.update(item)
        for item, real in Counter(events).items():
            assert real <= cu.query(item) <= cm.query(item)


class TestBehaviour:
    def test_rejects_decrement(self):
        with pytest.raises(ValueError):
            CUSketch(width=8).update(1, delta=-1)

    def test_zero_delta_noop(self):
        sketch = CUSketch(width=8)
        sketch.update(1, delta=0)
        assert sketch.query(1) == 0

    def test_update_and_query(self):
        sketch = CUSketch(width=64)
        assert sketch.update_and_query(4) == 1
        assert sketch.update_and_query(4) == 2

    def test_delta_update(self):
        sketch = CUSketch(width=64)
        sketch.update(1, delta=5)
        assert sketch.query(1) == 5
