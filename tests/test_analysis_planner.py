"""Memory planner: inverting the correct-rate bound."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import mean_topk_correct_rate_bound
from repro.analysis.planner import recommend_memory
from repro.analysis.zipf import zipf_model_frequencies


class TestValidation:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            recommend_memory(1000, 10_000, 1.0, 100, target_rate=1.0)
        with pytest.raises(ValueError):
            recommend_memory(1000, 10_000, 1.0, 100, target_rate=0.0)

    def test_rejects_bad_workload(self):
        with pytest.raises(ValueError):
            recommend_memory(0, 10_000, 1.0, 100)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            recommend_memory(
                5_000, 50_000, 1.0, 100, target_rate=0.999, max_buckets=4
            )


class TestRecommendation:
    def test_plan_meets_target(self):
        plan = recommend_memory(5_000, 50_000, 1.0, k=100, target_rate=0.9)
        assert plan.guaranteed_rate >= 0.9
        assert plan.total_bytes == plan.num_buckets * plan.bucket_width * 12

    def test_minimality(self):
        """One bucket fewer must fall below the target."""
        plan = recommend_memory(5_000, 50_000, 1.0, k=100, target_rate=0.9)
        freqs = zipf_model_frequencies(50_000, 5_000, 1.0)
        below = mean_topk_correct_rate_bound(
            freqs, plan.num_buckets - 1, plan.bucket_width, 100, sample=8
        )
        assert below < 0.9 or plan.num_buckets == 1

    def test_higher_target_needs_more_memory(self):
        lenient = recommend_memory(5_000, 50_000, 1.0, 100, target_rate=0.7)
        strict = recommend_memory(5_000, 50_000, 1.0, 100, target_rate=0.95)
        assert strict.total_bytes > lenient.total_bytes

    def test_more_distinct_items_need_more_memory(self):
        small = recommend_memory(2_000, 50_000, 1.0, 100, target_rate=0.9)
        large = recommend_memory(20_000, 50_000, 1.0, 100, target_rate=0.9)
        assert large.total_bytes >= small.total_bytes

    def test_str(self):
        plan = recommend_memory(2_000, 20_000, 1.0, 50, target_rate=0.8)
        assert "KB" in str(plan)

    def test_recommendation_holds_empirically(self):
        """The planned memory actually delivers the target correct rate
        on a matching synthetic stream (the bound is conservative)."""
        from repro.core.config import LTCConfig
        from repro.core.ltc import LTC
        from repro.streams.ground_truth import GroundTruth
        from repro.streams.synthetic import zipf_stream

        num_distinct, stream_len, skew, k = 3_000, 25_000, 1.0, 100
        plan = recommend_memory(
            num_distinct, stream_len, skew, k, target_rate=0.8
        )
        stream = zipf_stream(stream_len, num_distinct, skew, num_periods=10, seed=3)
        truth = GroundTruth(stream)
        ltc = LTC(
            LTCConfig(
                num_buckets=plan.num_buckets,
                bucket_width=plan.bucket_width,
                alpha=1.0,
                beta=0.0,
                items_per_period=stream.period_length,
                longtail_replacement=False,  # the bound's regime
            )
        )
        stream.run(ltc)
        exact_top = truth.top_k(k, 1.0, 0.0)
        correct = sum(1 for item, sig in exact_top if ltc.query(item) == sig)
        assert correct / k >= 0.8
