"""ColumnarLTC ≡ FastLTC ≡ LTC differential tests.

The columnar kernel reorders work inside ``insert_many`` (clean hits are
bincount-aggregated, CLOCK harvests run as array slices), so these tests
pin the commutation argument empirically: every observable — cells, CLOCK
phase, parity, estimates, top-k — must match a per-event replay exactly,
across policies, DE on/off, batch fragmentation, and period boundaries.
The numpy-free fallback and the vectorization bail-outs (oversized keys)
are exercised explicitly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar
from repro.core.columnar import ColumnarLTC
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.kernels import KERNELS, build_ltc
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.core.serialize import from_bytes, to_bytes
from repro.hashing.family import splitmix64
from tests.conftest import make_stream

pytestmark = pytest.mark.skipif(
    columnar._np is None, reason="numpy unavailable"
)


def run_trio(events, num_periods, *, batch=None, **cfg):
    """Drive LTC / FastLTC / ColumnarLTC over the same stream.

    The reference copies ingest per event through ``PeriodicStream.run``;
    the columnar copy ingests through ``insert_many`` in batches of
    ``batch`` (whole periods when ``None``) with ``end_period`` at every
    boundary — the exact call pattern whose reordering is under test.
    """
    num_periods = max(1, min(num_periods, len(events) or 1))
    defaults = dict(
        num_buckets=2,
        bucket_width=4,
        alpha=1.0,
        beta=1.0,
        items_per_period=max(1, len(events) // num_periods),
    )
    defaults.update(cfg)
    config = LTCConfig(**defaults)
    slow, fast, col = LTC(config), FastLTC(config), ColumnarLTC(config)
    if events:
        stream = make_stream(events, num_periods=num_periods)
        stream.run(slow)
        stream.run(fast, batched=True)
        for period in stream.period_batches():
            if batch is None:
                col.insert_many(period)
            else:
                for i in range(0, len(period), batch):
                    col.insert_many(period[i : i + batch])
            col.end_period()
        col.finalize()
    return slow, fast, col


def assert_identical(a: LTC, b: LTC) -> None:
    assert list(a.cells()) == list(b.cells())
    assert a._clock.hand == b._clock.hand
    assert a._clock._acc == b._clock._acc
    assert a._clock.scanned_in_period == b._clock.scanned_in_period
    assert a._parity == b._parity


class TestEquivalence:
    @given(
        st.lists(st.integers(0, 25), max_size=300),
        st.integers(1, 6),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_identical_cells(self, events, periods, ltr, de):
        slow, fast, col = run_trio(
            events,
            periods,
            longtail_replacement=ltr,
            deviation_eliminator=de,
        )
        assert_identical(slow, col)
        assert_identical(fast, col)

    @given(
        st.lists(st.integers(0, 40), max_size=300),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_fragmentation_immaterial(self, events, batch):
        """Splitting one period's arrivals across many insert_many calls
        cannot change the result."""
        _, fast, col = run_trio(events, 3, batch=batch)
        assert_identical(fast, col)

    @given(st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_identical_estimates(self, events):
        slow, _, col = run_trio(events, 4)
        for item in set(events) | {99999}:
            assert slow.estimate(item) == col.estimate(item)

    @pytest.mark.parametrize("policy", ["longtail", "one", "space-saving"])
    def test_replacement_policies_identical(self, policy):
        rng = random.Random(11)
        events = [rng.randrange(400) for _ in range(4_000)]
        slow, fast, col = run_trio(
            events, 8, num_buckets=4, replacement_policy=policy
        )
        assert_identical(slow, col)

    def test_zipf_workload_identical(self, small_zipf):
        config = LTCConfig(
            num_buckets=32,
            bucket_width=8,
            alpha=1.0,
            beta=1.0,
            items_per_period=small_zipf.period_length,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        small_zipf.run(fast, batched=True)
        small_zipf.run(col, batched=True)
        assert_identical(fast, col)
        assert fast.top_k(50) == col.top_k(50)

    def test_mid_period_state_identical(self):
        """Equality must hold at arbitrary points, not just boundaries."""
        rng = random.Random(3)
        config = LTCConfig(
            num_buckets=4, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=100,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        cursor = 0
        while cursor < 1_000:
            step = rng.randrange(1, 90)
            chunk = [rng.randrange(150) for _ in range(step)]
            fast.insert_many(chunk)
            col.insert_many(chunk)
            cursor += step
            assert_identical(fast, col)
            if rng.random() < 0.3:
                fast.end_period()
                col.end_period()
                assert_identical(fast, col)

    def test_sanitized_run_identical(self):
        """The column invariant checks pass live on a churny stream."""
        rng = random.Random(5)
        events = [rng.randrange(300) for _ in range(2_000)]
        config = LTCConfig(
            num_buckets=4, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=200, sanitize=True,
        )
        plain = ColumnarLTC(config.with_options(sanitize=False))
        checked = ColumnarLTC(config)
        stream = make_stream(events, num_periods=10)
        stream.run(plain, batched=True)
        stream.run(checked, batched=True)
        assert_identical(plain, checked)

    def test_counts_form_matches_expansion(self):
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=50,
        )
        a, b = ColumnarLTC(config), ColumnarLTC(config)
        a.insert_many([1, 2, 3], counts=[5, 1, 3])
        b.insert_many([1] * 5 + [2] + [3] * 3)
        assert_identical(a, b)

    def test_query_paths_return_python_scalars(self):
        """The numpy columns must not leak ``np.int64``/``np.float64``
        through the read APIs (that would break e.g. json.dumps of a
        report)."""
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=0.5, beta=2.0,
            items_per_period=20,
        )
        col = ColumnarLTC(config)
        col.insert_many([1, 2, 1, 3, 1, 2] * 10)
        col.end_period()
        f, p = col.estimate(1)
        assert type(f) is int and type(p) is int
        assert type(col.query(1)) is float
        for r in col.top_k(3):
            assert type(r.significance) is float
        for cv in col.cells():
            assert type(cv.frequency) is int
            assert type(cv.persistency) is int


def colliding_keys(ltc, bucket: int, count: int) -> "list[int]":
    """``count`` distinct keys that all map to ``bucket`` of ``ltc``."""
    keys = []
    candidate = 0
    while len(keys) < count:
        if splitmix64(candidate ^ ltc._seed) % ltc._w == bucket:
            keys.append(candidate)
        candidate += 1
    return keys


class TestAdversarialMissHeavy:
    """The segmented replay's worst cases: chunks where (almost) every
    event is a miss, so the peeling kernel does all the work and the
    clean-hit aggregation none of it."""

    @given(
        st.integers(20, 400),
        st.integers(0, 2**32),
        st.integers(1, 5),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_miss_chunks(self, n, seed, periods, ltr):
        """All-distinct keys over a tiny table: every chunk is one long
        dirty tail of claims and evictions."""
        rng = random.Random(seed)
        events = rng.sample(range(10 * n), n)
        slow, fast, col = run_trio(
            events, periods, num_buckets=2, longtail_replacement=ltr
        )
        assert_identical(slow, col)
        assert_identical(fast, col)

    @pytest.mark.parametrize("policy", ["longtail", "one", "space-saving"])
    def test_single_bucket_collision_storm(self, policy):
        """Every event lands in one bucket of a wide table — the peel
        loop degenerates to a single queue of maximal depth."""
        config = LTCConfig(
            num_buckets=8, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=500, replacement_policy=policy,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        probe = ColumnarLTC(config)
        keys = colliding_keys(probe, bucket=3, count=24)
        rng = random.Random(17)
        events = [rng.choice(keys) for _ in range(5_000)]
        stream = make_stream(events, num_periods=10)
        stream.run(fast, batched=True)
        stream.run(col, batched=True)
        assert_identical(fast, col)
        assert {cv.bucket for cv in col.cells() if not cv.empty} == {3}

    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=200),
        st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_oversized_key_mid_chunk(self, events, position):
        """A key outside uint64 arriving mid-chunk drops the rest of the
        stream to the scalar path without losing a single event."""
        position = min(position, len(events))
        poisoned = events[:position] + [1 << 70] + events[position:]
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=50,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        fast.insert_many(poisoned)
        col.insert_many(poisoned)
        assert not col._vec
        assert_identical(fast, col)
        # The instance stays consistent for later (vector-eligible) batches.
        fast.insert_many(events)
        col.insert_many(events)
        fast.end_period()
        col.end_period()
        assert_identical(fast, col)

    def test_eviction_storm_against_reference(self):
        """Distinct keys cycling through a saturated table churn every
        cell repeatedly; pin against the reference LTC too."""
        rng = random.Random(31)
        events = [rng.randrange(100_000) for _ in range(3_000)]
        slow, fast, col = run_trio(
            events, 6, num_buckets=4, replacement_policy="space-saving"
        )
        assert_identical(slow, col)
        assert_identical(fast, col)


class TestFallbacks:
    def test_runs_without_numpy(self, monkeypatch):
        """With numpy absent the class degrades to FastLTC behaviour."""
        monkeypatch.setattr(columnar, "_np", None)
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=20,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        assert not col._vec
        events = [random.Random(9).randrange(30) for _ in range(200)]
        fast.insert_many(events)
        col.insert_many(events)
        assert_identical(fast, col)

    def test_de_off_uses_scalar_path(self):
        """Without the Deviation Eliminator the harvest bit equals the
        set bit, so the batch reordering is unsound and the kernel must
        delegate; results still match."""
        _, fast, col = run_trio(
            [random.Random(2).randrange(50) for _ in range(800)],
            4,
            deviation_eliminator=False,
        )
        assert_identical(fast, col)

    def test_oversized_key_disables_vectorization(self):
        """Keys outside uint64 fall back to scalar ingestion for good."""
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=20,
        )
        fast, col = FastLTC(config), ColumnarLTC(config)
        events = [1, 2, 1 << 80, 2, 1, 1 << 80, 3]
        fast.insert_many(events)
        col.insert_many(events)
        assert not col._vec
        assert_identical(fast, col)
        # And it keeps working scalar afterwards.
        fast.insert_many([4, 5, 4])
        col.insert_many([4, 5, 4])
        assert_identical(fast, col)


class TestLifecycle:
    def make_pair(self):
        config = LTCConfig(
            num_buckets=4, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=100,
        )
        rng = random.Random(21)
        events = [rng.randrange(200) for _ in range(1_500)]
        fast, col = FastLTC(config), ColumnarLTC(config)
        stream = make_stream(events, num_periods=5)
        stream.run(fast, batched=True)
        stream.run(col, batched=True)
        return fast, col

    def test_checkpoint_roundtrip_continues_identically(self):
        fast, col = self.make_pair()
        restored = from_bytes(to_bytes(col), cls=ColumnarLTC)
        assert type(restored) is ColumnarLTC
        assert restored._vec
        tail = [random.Random(6).randrange(200) for _ in range(500)]
        fast.insert_many(tail)
        restored.insert_many(tail)
        assert_identical(fast, restored)

    def test_checkpoint_bytes_match_fast_ltc(self):
        """Same logical structure → byte-identical checkpoint."""
        fast, col = self.make_pair()
        assert to_bytes(col) == to_bytes(fast)

    def test_clear_rebuilds_columns(self):
        _, col = self.make_pair()
        col.clear()
        assert col._vec
        assert not col._occ.any()
        col.insert_many([1, 2, 1])
        assert col.estimate(1) == (2, 0)

    def test_merge_accepts_columnar_sites(self):
        """Merging columnar sites equals merging equivalent fast sites."""
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=10,
        )

        def sites(cls):
            built = []
            for offset in range(3):
                site = cls(config)
                site.insert_many([offset * 100 + j for j in range(8)] * 2)
                site.end_period()
                built.append(site)
            return built

        via_col = merge(sites(ColumnarLTC), num_periods=1)
        via_fast = merge(sites(FastLTC), num_periods=1)
        assert list(via_col.cells()) == list(via_fast.cells())


class TestKernelSelection:
    def test_build_ltc_honours_kernel(self):
        for name, cls in KERNELS.items():
            config = LTCConfig(
                num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
                items_per_period=10, kernel=name,
            )
            assert type(build_ltc(config)) is cls

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            LTCConfig(
                num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
                items_per_period=10, kernel="gpu",
            )


class SynchronousMirror:
    """The strictest legal CellListener: it re-reads every touched cell
    *inside the callback*.  The hooks contract (core/hooks.py) says a
    notification fires after the mutation in the same call, so at any
    point the mirror's last reading of a slot must equal the cell's
    settled state — deferred-repair listeners (ServingIndex) cannot see
    a notify-before-write ordering bug, this one can."""

    def __init__(self, ltc):
        self._ltc = ltc
        self.state = {}

    def cell_touched(self, slot):
        self.state[slot] = self._ltc.cell_state(slot)

    def cells_touched(self, slots):
        state, ltc = self.state, self._ltc
        for slot in slots:
            state[slot] = ltc.cell_state(slot)

    def cells_reset(self):
        self.state.clear()


class TestHooksContractSynchronousListener:
    """Regression: the segmented replay's eviction pass used to notify
    *before* rewriting the evicted cells' columns, so a synchronous
    listener saw pre-eviction keys it was never told were replaced."""

    def _assert_mirror_settled(self, mirror, ltc):
        for slot, seen in mirror.state.items():
            assert seen == ltc.cell_state(slot), f"slot {slot}"

    def test_segmented_eviction_notifies_after_writes(self):
        # 32 dirty buckets and 128-event batches of near-distinct keys:
        # every chunk carries a >=64-event dirty tail (the segmented
        # kernel's entry gate) and the full table forces SD deaths and
        # evictions through _apply_misses on many buckets at once.
        config = LTCConfig(
            num_buckets=32, bucket_width=2, alpha=1.0, beta=1.0,
            items_per_period=256,
        )
        col = ColumnarLTC(config)
        mirror = SynchronousMirror(col)
        col.attach_cell_listener(mirror)
        rng = random.Random(4242)
        for _ in range(40):
            col.insert_many([rng.randrange(5000) for _ in range(128)])
            self._assert_mirror_settled(mirror, col)
        col.end_period()
        self._assert_mirror_settled(mirror, col)

    @pytest.mark.parametrize("policy", ["longtail", "one", "space-saving"])
    def test_mirror_settled_across_policies(self, policy):
        config = LTCConfig(
            num_buckets=16, bucket_width=2, alpha=1.0, beta=1.0,
            items_per_period=128, replacement_policy=policy,
        )
        col = ColumnarLTC(config)
        mirror = SynchronousMirror(col)
        col.attach_cell_listener(mirror)
        rng = random.Random(policy)
        for _ in range(30):
            col.insert_many([rng.randrange(1200) for _ in range(96)])
            self._assert_mirror_settled(mirror, col)
            if rng.random() < 0.2:
                col.end_period()
                self._assert_mirror_settled(mirror, col)
