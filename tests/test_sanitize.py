"""Tests for :mod:`repro.sanitize`, the opt-in runtime invariant checker.

Three claims are pinned here:

1. **Detection** — deliberately corrupting each structure raises
   :class:`SanitizeError` naming the violated invariant, and the checker
   would have caught the historical ``persistency > frequency`` decrement
   bug *at the mutation site* (replayed via a subclass that restores the
   old decrement logic).
2. **Transparency** — a sanitized structure computes exactly the same
   states and estimates as an unsanitized one.
3. **Zero cost when off** — with sanitization disabled nothing is
   installed on the instance; the hot paths stay the plain class
   functions.
"""

import random

import pytest

from repro import sanitize
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.core.windowed import WindowedLTC
from repro.sanitize import SanitizeError
from repro.summaries.heap import TopKHeap
from repro.summaries.space_saving import SpaceSaving
from tests.conftest import make_stream


def small_config(**kw) -> LTCConfig:
    kw.setdefault("num_buckets", 2)
    kw.setdefault("bucket_width", 4)
    return LTCConfig(**kw)


def filled_ltc(**kw) -> LTC:
    ltc = LTC(small_config(**kw))
    for item in [1, 2, 3, 1, 1, 2, 9, 9]:
        ltc.insert(item)
    ltc.end_period()
    return ltc


# ----------------------------------------------------------- enablement
def test_env_enabled_parsing(monkeypatch):
    for value in ("1", "true", "YES", " On "):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize.env_enabled(), value
    for value in ("", "0", "no", "off", "2"):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize.env_enabled(), value
    monkeypatch.delenv("REPRO_SANITIZE")
    assert not sanitize.env_enabled()


def test_disabled_leaves_hot_paths_untouched():
    """Zero-cost-off: no wrapper, not even a flag branch, is installed."""
    ltc = LTC(small_config())
    for name in ("insert", "insert_many", "insert_timed", "end_period", "finalize"):
        assert name not in ltc.__dict__, name
    assert not hasattr(ltc, "_sanitize_installed")
    wltc = WindowedLTC(num_buckets=2, window=4)
    assert "insert" not in wltc.__dict__
    ss = SpaceSaving(capacity=4)
    assert "insert" not in ss.__dict__
    heap = TopKHeap(capacity=4)
    assert "offer" not in heap.__dict__


def test_config_flag_installs_wrappers():
    ltc = LTC(small_config(sanitize=True))
    for name in ("insert", "insert_many", "insert_timed", "end_period", "finalize"):
        assert name in ltc.__dict__, name
    # Installation is idempotent: a second call must not re-wrap.
    wrapped = ltc.insert
    sanitize.install_ltc(ltc)
    assert ltc.insert is wrapped


def test_env_flag_installs_everywhere(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert "insert" in LTC(small_config()).__dict__
    assert "insert" in FastLTC(small_config()).__dict__
    assert "insert" in WindowedLTC(num_buckets=2, window=4).__dict__
    assert "insert" in SpaceSaving(capacity=4).__dict__
    assert "offer" in TopKHeap(capacity=4).__dict__


# -------------------------------------------------- corruption detection
def invariant_of(excinfo) -> str:
    err = excinfo.value
    assert isinstance(err, SanitizeError)
    assert err.structure and err.invariant and err.detail
    assert err.invariant in str(err)
    return err.invariant


def tracked_slot(ltc: LTC) -> int:
    return next(j for j, key in enumerate(ltc._keys) if key is not None)


def test_detects_persistency_exceeding_frequency():
    ltc = filled_ltc()
    j = tracked_slot(ltc)
    ltc._counters[j] = ltc._freqs[j] + 1
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(ltc)
    assert invariant_of(excinfo) == "persistency_le_frequency"
    assert f"cell {j}" in excinfo.value.detail


def test_detects_pending_flag_credit():
    """The strong check counts un-harvested flags, so stranded credit is
    caught before the harvest that would materialise it."""
    ltc = filled_ltc(deviation_eliminator=True)
    j = tracked_slot(ltc)
    ltc._freqs[j] = 1
    ltc._counters[j] = 0
    ltc._flags[j] = 0b11
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(ltc)
    assert invariant_of(excinfo) == "persistency_le_frequency"
    assert "pending" in excinfo.value.detail


def test_detects_flag_domain_violation():
    ltc = filled_ltc()
    ltc._flags[tracked_slot(ltc)] = 0b100
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(ltc)
    assert invariant_of(excinfo) == "flag_domain"


def test_detects_dirty_empty_cell():
    ltc = filled_ltc()
    j = tracked_slot(ltc)
    ltc._keys[j] = None
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(ltc)
    assert invariant_of(excinfo) == "empty_cell_zeroed"


def test_detects_clock_corruption():
    ltc = filled_ltc()
    ltc._clock.hand = ltc.total_cells + 5
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(ltc)
    assert invariant_of(excinfo) == "clock_hand_in_range"


def test_detects_fast_ltc_index_divergence():
    fast = FastLTC(small_config())
    for item in [1, 2, 3, 1, 1]:
        fast.insert(item)
    sanitize.check_ltc(fast)  # healthy
    fast._slot_of[1] = (fast._slot_of[1] + 1) % fast.total_cells
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_ltc(fast)
    assert invariant_of(excinfo) == "index_matches_cells"


def test_detects_windowed_ring_escape():
    wltc = WindowedLTC(num_buckets=2, window=4)
    for item in [1, 2, 1]:
        wltc.insert(item)
    sanitize.check_windowed(wltc)  # healthy
    j = next(j for j, key in enumerate(wltc._keys) if key is not None)
    wltc._rings[j] |= 1 << wltc.window  # bit outside the window mask
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_windowed(wltc)
    assert invariant_of(excinfo) == "ring_in_window"


def test_detects_heap_property_violation():
    heap = TopKHeap(capacity=8)
    for item, value in enumerate([5.0, 3.0, 8.0, 1.0, 9.0, 2.0]):
        heap.offer(item, value)
    sanitize.check_heap(heap)  # healthy
    heap._values[0], heap._values[-1] = heap._values[-1], heap._values[0]
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_heap(heap)
    assert invariant_of(excinfo) == "heap_property"


def test_detects_heap_position_map_drift():
    heap = TopKHeap(capacity=8)
    for item, value in enumerate([5.0, 3.0, 8.0]):
        heap.offer(item, value)
    heap._pos[0], heap._pos[1] = heap._pos[1], heap._pos[0]
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_heap(heap)
    assert invariant_of(excinfo) == "position_map_matches"


def test_detects_stream_summary_corruption():
    ss = SpaceSaving(capacity=3)
    for item in [1, 2, 3, 1, 1, 4, 5, 2]:
        ss.insert(item)
    sanitize.check_space_saving(ss)  # healthy
    node = next(iter(ss._summary._nodes.values()))
    node.count += 1  # now disagrees with its bucket
    with pytest.raises(SanitizeError) as excinfo:
        sanitize.check_space_saving(ss)
    assert invariant_of(excinfo) == "node_in_count_bucket"


def test_checkpoint_round_trip_check_passes_on_healthy_ltc():
    sanitize.check_ltc_checkpoint(filled_ltc())
    sanitize.check_ltc_checkpoint(filled_ltc(deviation_eliminator=False))


# ------------------------------------------- the historical decrement bug
class OldDecrementLTC(LTC):
    """LTC with the pre-fix Significance Decrementing logic: the decrement
    charges frequency without reconciling pending (un-harvested) flag
    credit, which strands persistency credit the next harvest turns into
    ``persistency > frequency``."""

    def _decrement_smallest(self, item: int, base: int) -> None:
        d = self._d
        alpha, beta = self._alpha, self._beta
        freqs, counters = self._freqs, self._counters
        jmin = base
        smin = alpha * freqs[base] + beta * counters[base]
        for j in range(base + 1, base + d):
            s = alpha * freqs[j] + beta * counters[j]
            if s < smin:
                smin, jmin = s, j
        if counters[jmin] > 0:
            counters[jmin] -= 1
        if freqs[jmin] > 0:
            freqs[jmin] -= 1
        if alpha * freqs[jmin] + beta * counters[jmin] > 0:
            return
        self._keys[jmin] = item
        freqs[jmin] = 1
        counters[jmin] = 0
        self._flags[jmin] = self._set_bit


ROADMAP_EVENTS = [0, 0, 0, 4, 6, 8, 0, 0, 0, 1, 1, 4]


def test_sanitizer_catches_old_decrement_bug():
    """Replaying the ROADMAP repro against the old decrement logic with
    sanitization enabled fails at the mutation site — the sanitizer would
    have caught the historical bug long before the final estimates."""
    stream = make_stream(ROADMAP_EVENTS, num_periods=6)
    ltc = OldDecrementLTC(
        small_config(
            num_buckets=2,
            bucket_width=4,
            items_per_period=stream.period_length,
            longtail_replacement=False,
            sanitize=True,
        )
    )
    with pytest.raises(SanitizeError) as excinfo:
        stream.run(ltc)
    assert invariant_of(excinfo) == "persistency_le_frequency"


def test_fixed_decrement_passes_same_stream():
    """The same stream through the fixed LTC sanitizes cleanly end to end."""
    stream = make_stream(ROADMAP_EVENTS, num_periods=6)
    ltc = LTC(
        small_config(
            num_buckets=2,
            bucket_width=4,
            items_per_period=stream.period_length,
            longtail_replacement=False,
            sanitize=True,
        )
    )
    stream.run(ltc)
    assert ltc.estimate(1) == (1, 1)


# ------------------------------------------------------------ transparency
def test_sanitized_run_is_bit_identical_to_plain_run():
    rng = random.Random(0x5A17)
    for trial in range(25):
        events = [rng.randrange(10) for _ in range(rng.randrange(5, 80))]
        cfg = dict(
            num_buckets=2,
            bucket_width=4,
            items_per_period=max(1, len(events) // 4),
            longtail_replacement=bool(trial % 2),
            deviation_eliminator=bool((trial // 2) % 2),
            seed=trial,
        )
        plain = LTC(small_config(**cfg))
        checked = LTC(small_config(sanitize=True, **cfg))
        for event in events:
            plain.insert(event)
            checked.insert(event)
        plain.end_period()
        checked.end_period()
        assert list(plain.cells()) == list(checked.cells()), trial
        for item in set(events):
            assert plain.estimate(item) == checked.estimate(item)


def test_sanitized_batched_run_matches_plain():
    events = [3, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5] * 4
    plain = FastLTC(small_config(items_per_period=8))
    checked = FastLTC(small_config(items_per_period=8, sanitize=True))
    plain.insert_many(events)
    checked.insert_many(events)
    plain.finalize()
    checked.finalize()
    assert list(plain.cells()) == list(checked.cells())


def test_sanitized_space_saving_matches_plain(monkeypatch):
    events = [1, 2, 3, 1, 1, 4, 5, 2, 6, 1, 7, 2] * 3
    plain = SpaceSaving(capacity=4)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    checked = SpaceSaving(capacity=4)
    assert "insert" in checked.__dict__
    for event in events:
        plain.insert(event)
        checked.insert(event)
    assert plain._summary.top(4) == checked._summary.top(4)
