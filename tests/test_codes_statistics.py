"""Statistical behaviour of the fountain codes."""

from __future__ import annotations

import random
from collections import Counter

from repro.codes.lt import LTCode, RobustSoliton
from repro.codes.raptor import RaptorCode


class TestSolitonStatistics:
    def test_mean_degree_is_logarithmic(self):
        """Robust-soliton mean degree grows like O(log n) — far below the
        uniform mean (n/2)."""
        n = 64
        soliton = RobustSoliton(n)
        rng = random.Random(2)
        draws = [soliton.degree(rng.random()) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        assert 1.5 < mean < 16

    def test_degree_two_most_common_among_higher(self):
        """ρ(2) = 1/2 dominates the ideal-soliton part."""
        soliton = RobustSoliton(64)
        rng = random.Random(3)
        counts = Counter(soliton.degree(rng.random()) for _ in range(20_000))
        assert counts[2] == max(
            count for degree, count in counts.items() if degree >= 2
        )


class TestLTDecodeRates:
    def test_rate_monotone_in_symbol_count(self):
        code = LTCode(num_source=4, chunk_bits=8, seed=6)
        rng = random.Random(6)

        def rate(num_symbols: int) -> float:
            ok = 0
            for _ in range(300):
                value = rng.getrandbits(32)
                idxs = rng.sample(range(100_000), num_symbols)
                symbols = [(i, code.encode(value, i)) for i in idxs]
                ok += code.decode(symbols) == value
            return ok / 300

        rates = [rate(k) for k in (4, 6, 8, 12)]
        assert rates[0] <= rates[-1]
        assert rates[-1] > 0.9


class TestRaptorStatistics:
    def test_symbol_values_roughly_uniform_without_parity(self):
        """Encoded symbols of random ids cover the 16-bit space without
        gross bias (chunk-XOR of independent uniform chunks is uniform).
        Tested on the parity-free code: with a parity chunk the all-ones
        mask XORs to the constant 0 (see the degeneracy test below)."""
        code = RaptorCode(num_source=2, num_parity=0, chunk_bits=16, seed=9)
        rng = random.Random(9)
        buckets = [0] * 16
        for _ in range(8_000):
            symbol = code.encode(rng.getrandbits(32), rng.randrange(10_000))
            buckets[symbol >> 12] += 1
        assert max(buckets) < 2 * min(buckets)

    def test_full_mask_degeneracy_with_parity(self):
        """With parity = source XOR, a symbol covering all intermediates
        always encodes 0 — it duplicates the parity constraint and adds
        no information.  Inherent to short precoded blocks; documented."""
        code = RaptorCode(num_source=2, num_parity=1, chunk_bits=16, seed=9)
        rng = random.Random(9)
        full_mask_symbols = []
        for idx in range(5_000):
            if code._lt.neighbors(idx) == [0, 1, 2]:
                full_mask_symbols.append(code.encode(rng.getrandbits(32), idx))
        assert full_mask_symbols, "uniform masks must include the full mask"
        assert set(full_mask_symbols) == {0}

    def test_parity_costs_rate_under_elimination(self):
        """Under the Gaussian-elimination decoder a random linear fountain
        is already near-optimal, so the precode slightly *reduces* the
        clean-decode rate (it adds an unknown per parity).  Mixed-item
        symbol groups mostly fail to solve either way; the garbage that
        does solve is what PIE's fingerprint/membership verification
        filters (tested in test_stbf_properties.py)."""
        rng = random.Random(10)

        def stats(num_parity: int):
            code = RaptorCode(
                num_source=2, num_parity=num_parity, chunk_bits=16, seed=4
            )
            ok = 0
            mixed_unsolved = 0
            for _ in range(600):
                value = rng.getrandbits(32)
                idxs = rng.sample(range(100_000), 3)
                symbols = [(i, code.encode(value, i)) for i in idxs]
                ok += code.decode(symbols) == value
                other = rng.getrandbits(32)
                mixed = [
                    (i, code.encode(value if n == 0 else other, i))
                    for n, i in enumerate(idxs)
                ]
                mixed_unsolved += code.decode(mixed) is None
            return ok / 600, mixed_unsolved / 600

        rate_p0, unsolved_p0 = stats(0)
        rate_p1, unsolved_p1 = stats(1)
        assert rate_p0 >= rate_p1  # elimination decoding: parity costs rate
        assert unsolved_p0 > 0.5 and unsolved_p1 > 0.5

    def test_different_seeds_give_different_codes(self):
        a = RaptorCode(seed=1)
        b = RaptorCode(seed=2)
        symbols_a = [a.encode(0xDEADBEEF, i) for i in range(50)]
        symbols_b = [b.encode(0xDEADBEEF, i) for i in range(50)]
        assert symbols_a != symbols_b
