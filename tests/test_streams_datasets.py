"""Dataset substitutes: shape properties the experiments rely on."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.streams.datasets import (
    caida_like,
    load_dataset,
    network_like,
    social_like,
    temporal_zipf_stream,
)
from repro.streams.ground_truth import GroundTruth


class TestTemporalZipfStream:
    def test_event_count_and_periods(self):
        stream = temporal_zipf_stream(
            num_events=5_000, num_distinct=1_000, skew=1.0, num_periods=10, seed=1
        )
        assert len(stream) == 5_000
        assert stream.num_periods == 10

    def test_deterministic(self):
        kwargs = dict(
            num_events=2_000, num_distinct=400, skew=1.0, num_periods=5, seed=2
        )
        assert (
            temporal_zipf_stream(**kwargs).events
            == temporal_zipf_stream(**kwargs).events
        )

    def test_bursts_decouple_frequency_from_persistency(self):
        """With heavy bursting, some high-frequency items must span only a
        few periods — the regime that separates significant from merely
        frequent items."""
        stream = temporal_zipf_stream(
            num_events=20_000,
            num_distinct=2_000,
            skew=1.0,
            num_periods=40,
            burst_fraction=0.6,
            burst_width=0.05,
            seed=5,
        )
        truth = GroundTruth(stream)
        frequent = [item for item, f in Counter(stream.events).items() if f >= 50]
        spans = sorted(truth.persistency(item) for item in frequent)
        assert spans, "need some frequent items"
        # At least one frequent item is bursty (few periods) and at least
        # one is persistent (many periods).
        assert spans[0] <= 10
        assert spans[-1] >= 30

    def test_no_bursts_makes_frequent_items_persistent(self):
        stream = temporal_zipf_stream(
            num_events=20_000,
            num_distinct=2_000,
            skew=1.0,
            num_periods=20,
            burst_fraction=0.0,
            seed=5,
        )
        truth = GroundTruth(stream)
        top = Counter(stream.events).most_common(10)
        assert all(truth.persistency(item) >= 18 for item, _ in top)

    def test_rejects_bad_burst_fraction(self):
        with pytest.raises(ValueError):
            temporal_zipf_stream(100, 10, 1.0, 2, burst_fraction=1.5)

    def test_rejects_bad_diurnal_amplitude(self):
        with pytest.raises(ValueError):
            temporal_zipf_stream(100, 10, 1.0, 2, diurnal_amplitude=1.0)


class TestDatasetBuilders:
    @pytest.mark.parametrize("builder", [caida_like, network_like, social_like])
    def test_builders_scale_down(self, builder):
        stream = builder(num_events=3_000, num_distinct=600, num_periods=6)
        assert len(stream) == 3_000
        assert stream.num_periods == 6

    def test_names(self):
        assert caida_like(num_events=500, num_distinct=100, num_periods=2).name == "caida-like"
        assert network_like(num_events=500, num_distinct=100, num_periods=2).name == "network-like"
        assert social_like(num_events=500, num_distinct=100, num_periods=2).name == "social-like"

    def test_caida_more_skewed_than_social(self):
        caida = caida_like(num_events=10_000, num_distinct=2_000, num_periods=10)
        social = social_like(num_events=10_000, num_distinct=2_000, num_periods=10)
        top_caida = Counter(caida.events).most_common(1)[0][1]
        top_social = Counter(social.events).most_common(1)[0][1]
        assert top_caida > top_social

    def test_load_dataset(self):
        stream = load_dataset("caida", num_events=500, num_distinct=100, num_periods=2)
        assert stream.name == "caida-like"

    def test_load_dataset_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")
