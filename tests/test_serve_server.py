"""ServingApp HTTP behaviour, shutdown draining, kill-and-restart recovery.

In-process tests drive the asyncio server on an ephemeral port; the
recovery test runs the real CLI in a subprocess, SIGKILLs it mid-life,
and restarts from the rotated snapshot directory.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.serve.server import ServingApp, run_app
from repro.serve.snapshots import SnapshotStore

REPO = Path(__file__).resolve().parents[1]


def _cfg(**kw):
    base = dict(num_buckets=8, bucket_width=2, items_per_period=64)
    base.update(kw)
    return LTCConfig(**base)


async def _http(port, method, path, body=b""):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n".encode() + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), payload


class _Server:
    """Run one app on an ephemeral port inside the current loop."""

    def __init__(self, app):
        self.app = app
        self.port = None
        self.stop = asyncio.Event()
        self.task = None

    async def __aenter__(self):
        started = asyncio.Event()

        def ready(_host, port):
            self.port = port
            started.set()

        self.task = asyncio.ensure_future(
            run_app(self.app, "127.0.0.1", 0, ready=ready, stop_event=self.stop)
        )
        await started.wait()
        return self

    async def __aexit__(self, *exc):
        self.stop.set()
        await self.task


class TestEndpoints:
    def test_round_trip_over_http(self, tmp_path):
        async def scenario():
            app = ServingApp(
                build_ltc(_cfg()),
                snapshots=SnapshotStore(tmp_path, retain=2),
                check_oracle=True,
            )
            async with _Server(app) as srv:
                body = json.dumps({"items": list(range(10)) * 40}).encode()
                status, payload = await _http(srv.port, "POST", "/ingest", body)
                assert status == 200 and json.loads(payload)["queued"] == 400
                while json.loads((await _http(srv.port, "GET", "/stats"))[1])["queued"]:
                    await asyncio.sleep(0.005)
                status, payload = await _http(srv.port, "GET", "/top_k?k=3")
                assert status == 200
                assert len(json.loads(payload)["results"]) == 3
                status, payload = await _http(srv.port, "GET", "/query/5")
                assert status == 200 and json.loads(payload)["tracked"] is True
                status, payload = await _http(
                    srv.port, "GET", "/significant?threshold=1"
                )
                assert status == 200 and json.loads(payload)["results"]
                status, _ = await _http(srv.port, "GET", "/healthz")
                assert status == 200
                status, payload = await _http(srv.port, "POST", "/snapshot")
                assert status == 200 and json.loads(payload)["snapshot"]

        asyncio.run(scenario())

    def test_error_statuses(self):
        async def scenario():
            app = ServingApp(build_ltc(_cfg()))
            async with _Server(app) as srv:
                assert (await _http(srv.port, "GET", "/nope"))[0] == 404
                assert (await _http(srv.port, "POST", "/top_k"))[0] == 405
                assert (await _http(srv.port, "GET", "/query/abc"))[0] == 400
                assert (await _http(srv.port, "GET", "/top_k?k=-1"))[0] == 400
                assert (await _http(srv.port, "GET", "/significant"))[0] == 400
                assert (await _http(srv.port, "POST", "/ingest", b"{"))[0] == 400
                assert (
                    await _http(
                        srv.port, "POST", "/ingest", b'{"items": ["x"]}'
                    )
                )[0] == 400
                assert (await _http(srv.port, "POST", "/snapshot"))[0] == 503

        asyncio.run(scenario())

    def test_metrics_endpoint_exposes_serve_counters(self):
        async def scenario():
            obs.enable()
            try:
                app = ServingApp(build_ltc(_cfg()))
                async with _Server(app) as srv:
                    await _http(srv.port, "GET", "/healthz")
                    status, payload = await _http(srv.port, "GET", "/metrics")
                    assert status == 200
                    assert b"serve_requests_total" in payload
                    assert b"ltc_inserts_total" in payload
            finally:
                obs.disable()

        asyncio.run(scenario())

    def test_metrics_503_when_disabled(self):
        async def scenario():
            app = ServingApp(build_ltc(_cfg()))
            async with _Server(app) as srv:
                assert (await _http(srv.port, "GET", "/metrics"))[0] == 503

        asyncio.run(scenario())


class TestShutdown:
    def test_shutdown_drains_queue_and_snapshots(self, tmp_path):
        async def scenario():
            app = ServingApp(
                build_ltc(_cfg()), snapshots=SnapshotStore(tmp_path, retain=2)
            )
            async with _Server(app) as srv:
                body = json.dumps({"items": list(range(30)) * 100}).encode()
                for _ in range(3):
                    await _http(srv.port, "POST", "/ingest", body)
            # __aexit__ fired the stop event: every queued batch must have
            # been applied and a final snapshot written.
            assert app.queued == 0
            assert app.ingested == 3 * 3000
            assert app.snapshots_written == 1

        asyncio.run(scenario())
        store = SnapshotStore(tmp_path, retain=2)
        restored = store.restore()
        assert restored is not None and len(restored) > 0


def _spawn_cli(tmp_path, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--num-buckets",
            "8",
            "--bucket-width",
            "2",
            "--items-per-period",
            "64",
            "--snapshot-dir",
            str(tmp_path),
            "--snapshot-every",
            "1",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError("server never reported its port")
    return proc, port


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as rsp:
        return json.loads(rsp.read())


def _post(port, path, doc):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(doc).encode(),
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as rsp:
        return json.loads(rsp.read())


@pytest.mark.slow
class TestKillAndRestart:
    def test_sigkill_then_restart_recovers_snapshot(self, tmp_path):
        proc, port = _spawn_cli(tmp_path)
        try:
            _post(port, "/ingest", {"items": list(range(25)) * 80})
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = _get(port, "/stats")
                if stats["queued"] == 0 and stats["snapshots_written"] >= 1:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError(f"never drained: {stats}")
            survivors = _get(port, "/top_k?k=5")
        finally:
            proc.kill()  # SIGKILL: no clean shutdown, no final snapshot
            proc.wait(timeout=10)

        proc2, port2 = _spawn_cli(tmp_path)
        try:
            stats = _get(port2, "/stats")
            assert stats["tracked"] > 0  # state survived the hard kill
            assert _get(port2, "/top_k?k=5") == survivors
        finally:
            proc2.send_signal(signal.SIGTERM)
            out, _ = proc2.communicate(timeout=15)
        assert proc2.returncode == 0
        assert "shutdown:" in out

    def test_sigterm_clean_shutdown_writes_snapshot(self, tmp_path):
        proc, port = _spawn_cli(tmp_path)
        _post(port, "/ingest", {"items": list(range(10)) * 20})
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=15)
        assert proc.returncode == 0
        # the queued batch was drained before exit, then checkpointed
        assert "ingested=200" in out
        restored = SnapshotStore(tmp_path).restore()
        assert restored is not None and len(restored) > 0
