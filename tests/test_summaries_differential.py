"""Cross-algorithm differential relations on identical streams.

The counter summaries bound the truth from different sides; running them
on one stream lets us assert the textbook sandwich relations directly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.streams.ground_truth import GroundTruth
from repro.summaries.frequent import Frequent
from repro.summaries.space_saving import SpaceSaving
from tests.conftest import make_stream


class TestCounterSandwich:
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_mg_below_truth_below_ss(self, events):
        """For every item: MG ≤ truth; for monitored items: truth ≤ SS."""
        capacity = 8
        mg = Frequent(capacity)
        ss = SpaceSaving(capacity)
        stream = make_stream(events, num_periods=1)
        truth = GroundTruth(stream)
        for item in events:
            mg.insert(item)
            ss.insert(item)
        for item in set(events):
            real = truth.frequency(item)
            assert mg.query(item) <= real
            ss_estimate = ss.query(item)
            if ss_estimate > 0:  # monitored
                assert ss_estimate >= real

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_ss_total_conservation(self, events):
        """Space-Saving conserves total count; Misra-Gries only sheds."""
        capacity = 8
        mg = Frequent(capacity)
        ss = SpaceSaving(capacity)
        for item in events:
            mg.insert(item)
            ss.insert(item)
        ss_total = sum(r.frequency for r in ss.top_k(capacity))
        mg_total = sum(r.frequency for r in mg.top_k(capacity))
        assert ss_total == len(events)
        assert mg_total <= len(events)


class TestSketchSandwichOnRealisticStream:
    def test_truth_cu_cm_ordering_everywhere(self, medium_zipf, medium_zipf_truth):
        cm = CountMinSketch(width=512, rows=3, seed=31)
        cu = CUSketch(width=512, rows=3, seed=31)
        for item in medium_zipf.events:
            cm.update(item)
            cu.update(item)
        violations_cu_cm = 0
        for item in medium_zipf_truth.items():
            real = medium_zipf_truth.frequency(item)
            cu_est, cm_est = cu.query(item), cm.query(item)
            assert real <= cu_est
            if cu_est > cm_est:
                violations_cu_cm += 1
        assert violations_cu_cm == 0

    def test_cu_strictly_tighter_in_aggregate(self, medium_zipf, medium_zipf_truth):
        cm = CountMinSketch(width=256, rows=3, seed=32)
        cu = CUSketch(width=256, rows=3, seed=32)
        for item in medium_zipf.events:
            cm.update(item)
            cu.update(item)
        cm_error = sum(
            cm.query(i) - medium_zipf_truth.frequency(i)
            for i in medium_zipf_truth.items()
        )
        cu_error = sum(
            cu.query(i) - medium_zipf_truth.frequency(i)
            for i in medium_zipf_truth.items()
        )
        assert cu_error < 0.75 * cm_error


class TestLTCAgainstCounterBaselines:
    def test_ltc_matches_exact_on_uncontended_stream(self):
        """Everything agrees when memory is ample — the algorithms only
        diverge under pressure."""
        from repro.core.config import LTCConfig
        from repro.core.ltc import LTC

        rng = random.Random(44)
        events = [rng.randrange(20) for _ in range(500)]
        stream = make_stream(events, num_periods=5)
        truth = GroundTruth(stream)

        ltc = LTC(
            LTCConfig(
                num_buckets=16,
                bucket_width=8,
                alpha=1.0,
                beta=0.0,
                items_per_period=stream.period_length,
            )
        )
        ss = SpaceSaving(capacity=64)
        mg = Frequent(capacity=64)
        stream.run(ltc)
        for item in events:
            ss.insert(item)
            mg.insert(item)
        for item in set(events):
            real = truth.frequency(item)
            assert ltc.estimate(item)[0] == real
            assert ss.query(item) == real
            assert mg.query(item) == real
