"""LTCConfig validation and sizing."""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.metrics.memory import MemoryBudget, kb


class TestValidation:
    def test_defaults(self):
        config = LTCConfig(num_buckets=10, items_per_period=100)
        assert config.bucket_width == 8
        assert config.deviation_eliminator
        assert config.longtail_replacement

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_buckets=0, items_per_period=1),
            dict(num_buckets=1, bucket_width=0, items_per_period=1),
            dict(num_buckets=1, alpha=-1.0, items_per_period=1),
            dict(num_buckets=1, beta=-0.5, items_per_period=1),
            dict(num_buckets=1, alpha=0.0, beta=0.0, items_per_period=1),
            dict(num_buckets=1, items_per_period=0),
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            LTCConfig(**kwargs)

    def test_total_cells(self):
        config = LTCConfig(num_buckets=10, bucket_width=4, items_per_period=1)
        assert config.total_cells == 40

    def test_from_memory(self):
        config = LTCConfig.from_memory(
            MemoryBudget(kb(12)), items_per_period=100, bucket_width=8
        )
        assert config.num_buckets == 1024 // 8
        assert config.total_cells <= kb(12) // 12

    def test_with_options(self):
        config = LTCConfig(num_buckets=10, items_per_period=1)
        basic = config.with_options(
            deviation_eliminator=False, longtail_replacement=False
        )
        assert not basic.deviation_eliminator
        assert not basic.longtail_replacement
        assert basic.num_buckets == 10
        assert config.deviation_eliminator  # original untouched


class TestReplacementPolicy:
    def test_default_policy_follows_boolean(self):
        config = LTCConfig(num_buckets=1, items_per_period=1)
        assert config.effective_replacement_policy == "longtail"
        basic = config.with_options(longtail_replacement=False)
        assert basic.effective_replacement_policy == "one"

    def test_explicit_policy_overrides(self):
        config = LTCConfig(
            num_buckets=1,
            items_per_period=1,
            longtail_replacement=True,
            replacement_policy="space-saving",
        )
        assert config.effective_replacement_policy == "space-saving"

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            LTCConfig(num_buckets=1, items_per_period=1, replacement_policy="x")
