"""SmallSpacePersistent: coordinated sampling semantics."""

from __future__ import annotations

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.small_space import SmallSpacePersistent
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


class TestSampling:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SmallSpacePersistent(0)
        with pytest.raises(ValueError):
            SmallSpacePersistent(10, sample_rate=0.0)
        with pytest.raises(ValueError):
            SmallSpacePersistent(10, sample_rate=1.5)

    def test_full_rate_tracks_exactly(self):
        summary = SmallSpacePersistent(capacity=1_000, sample_rate=1.0)
        stream = make_stream([1, 2, 1, 3, 1, 2, 1, 4], num_periods=4)
        truth = GroundTruth(stream)
        stream.run(summary)
        for item in truth.items():
            assert summary.query(item) == truth.persistency(item)
            assert summary.frequency(item) == truth.frequency(item)

    def test_sampled_items_are_exact(self, small_zipf, small_zipf_truth):
        summary = SmallSpacePersistent(capacity=10_000, sample_rate=0.2, seed=3)
        small_zipf.run(summary)
        for report in summary.top_k(100):
            assert report.persistency == small_zipf_truth.persistency(report.item)
            assert report.frequency == small_zipf_truth.frequency(report.item)

    def test_unsampled_items_invisible(self):
        summary = SmallSpacePersistent(capacity=1_000, sample_rate=1e-9)
        for item in range(100):
            summary.insert(item)
        assert len(summary) <= 1  # essentially nothing sampled

    def test_coordination_across_periods(self):
        """The same items are sampled in every period, so persistency of a
        sampled item is unbiased."""
        summary = SmallSpacePersistent(capacity=1_000, sample_rate=0.5, seed=7)
        stream = make_stream(list(range(50)) * 6, num_periods=6)
        stream.run(summary)
        for report in summary.top_k(1_000):
            assert report.persistency == 6


class TestCapacity:
    def test_tighten_keeps_capacity(self):
        summary = SmallSpacePersistent(capacity=50, sample_rate=1.0)
        for item in range(5_000):
            summary.insert(item)
        assert len(summary) <= 50
        assert summary.sample_rate < 1.0

    def test_tighten_preserves_exactness(self):
        summary = SmallSpacePersistent(capacity=100, sample_rate=1.0, seed=5)
        stream = make_stream([i % 500 for i in range(4_000)], num_periods=8)
        truth = GroundTruth(stream)
        stream.run(summary)
        for report in summary.top_k(100):
            assert report.persistency == truth.persistency(report.item)

    def test_from_memory(self):
        summary = SmallSpacePersistent.from_memory(
            MemoryBudget(kb(2)), expected_distinct=10_000
        )
        assert summary.capacity == kb(2) // 12
        assert 0.0 < summary.sample_rate <= 1.0


class TestRecallLimitation:
    def test_misses_unsampled_heavy_hitters(self, small_zipf, small_zipf_truth):
        """The structural weakness vs LTC: a low sampling rate misses a
        fraction of the true top-k no matter how persistent they are."""
        summary = SmallSpacePersistent(capacity=10_000, sample_rate=0.3, seed=2)
        small_zipf.run(summary)
        exact = small_zipf_truth.top_k_items(50, 0.0, 1.0)
        reported = {r.item for r in summary.top_k(50)}
        hit_rate = len(reported & exact) / 50
        assert hit_rate < 0.75  # ≈ sample_rate in expectation
