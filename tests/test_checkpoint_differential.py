"""Checkpoint/restore mid-stream ≡ an uninterrupted run.

The serializer's contract ("restoring reproduces the structure exactly")
is exercised differentially: a stream is split at a random point, the
prefix-built structure is checkpointed and restored (dict and binary
formats), the suffix is replayed on the restored copy, and the result
must be bit-identical to a run that never checkpointed — including the
timed-mode state (``_clock._tacc``, ``_last_timestamp``) that the v1
format silently dropped.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.core.serialize import from_bytes, from_state, to_bytes, to_state

ROUNDTRIPS = [
    pytest.param(lambda l, cls: from_state(to_state(l), cls=cls), id="state"),
    pytest.param(lambda l, cls: from_bytes(to_bytes(l), cls=cls), id="bytes"),
]


def identical(a: LTC, b: LTC) -> None:
    assert list(a.cells()) == list(b.cells())
    assert a._clock.hand == b._clock.hand
    assert a._clock._acc == b._clock._acc
    assert a._clock._tacc == b._clock._tacc
    assert a._clock.scanned_in_period == b._clock.scanned_in_period
    assert a._parity == b._parity
    assert a._last_timestamp == b._last_timestamp


class TestTimedModeSplit:
    """The acceptance-criterion scenario: an ``insert_timed`` stream split
    by checkpoint/restore equals the uninterrupted run."""

    @given(
        arrivals=st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.0, 3.0)),
            min_size=1,
            max_size=120,
        ),
        split=st.integers(0, 120),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_timed_run_is_bit_identical(self, arrivals, split, data):
        # Timestamps must be non-decreasing: accumulate the positive gaps.
        timed = []
        now = 0.0
        for item, gap in arrivals:
            now += gap
            timed.append((item, now))
        split = min(split, len(timed))
        roundtrip = data.draw(st.sampled_from([p.values[0] for p in ROUNDTRIPS]))

        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=1,
        )
        straight = LTC(config)
        for item, ts in timed:
            straight.insert_timed(item, ts, period_seconds=0.75)

        prefix = LTC(config)
        for item, ts in timed[:split]:
            prefix.insert_timed(item, ts, period_seconds=0.75)
        resumed = roundtrip(prefix, LTC)
        identical(prefix, resumed)
        for item, ts in timed[split:]:
            resumed.insert_timed(item, ts, period_seconds=0.75)

        identical(straight, resumed)

    @pytest.mark.parametrize("roundtrip", ROUNDTRIPS)
    @pytest.mark.parametrize("cls", [LTC, FastLTC], ids=["LTC", "FastLTC"])
    def test_split_with_period_boundaries(self, roundtrip, cls):
        """Timed arrivals interleaved with explicit end_period calls."""
        rng = random.Random(31)
        now = 0.0
        timed = []
        for _ in range(300):
            now += rng.random() * 0.2
            timed.append((rng.randrange(25), now))

        def drive(ltc, arrivals):
            next_boundary = 1.0
            for item, ts in arrivals:
                while ts >= next_boundary:
                    ltc.end_period()
                    next_boundary += 1.0
                ltc.insert_timed(item, ts, period_seconds=1.0)

        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=2.0,
            items_per_period=1,
        )
        straight = cls(config)
        drive(straight, timed)

        split = 157
        prefix = cls(config)
        drive(prefix, timed[:split])
        resumed = roundtrip(prefix, cls)
        # Replay the suffix, resuming the boundary scan where it left off.
        next_boundary = (
            int(timed[split - 1][1]) + 1.0 if split else 1.0
        )
        for item, ts in timed[split:]:
            while ts >= next_boundary:
                resumed.end_period()
                next_boundary += 1.0
            resumed.insert_timed(item, ts, period_seconds=1.0)
        # And on the straight copy nothing more; compare final states.
        drive_boundary = int(timed[-1][1]) + 1.0  # same pending boundary
        assert drive_boundary == next_boundary
        identical(straight, resumed)


class TestCountBasedSplit:
    """Count-based streams split by checkpoint, driven via insert_many."""

    @given(
        events=st.lists(st.integers(0, 30), max_size=300),
        split=st.integers(0, 300),
        n=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_batched_run_is_bit_identical(self, events, split, n):
        split = min(split, len(events))
        config = LTCConfig(
            num_buckets=3, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=n,
        )
        straight = LTC(config)
        straight.insert_many(events)

        prefix = LTC(config)
        prefix.insert_many(events[:split])
        resumed = from_bytes(to_bytes(prefix))
        resumed.insert_many(events[split:])

        identical(straight, resumed)

    def test_fast_ltc_split_continues_on_fast_path(self):
        """A restored FastLTC keeps batching through its rebuilt index."""
        rng = random.Random(8)
        events = [rng.randrange(200) for _ in range(4_000)]
        config = LTCConfig(
            num_buckets=8, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=400,
        )
        straight = FastLTC(config)
        straight.insert_many(events)

        prefix = FastLTC(config)
        prefix.insert_many(events[:1_700])
        resumed = from_bytes(to_bytes(prefix), cls=FastLTC)
        resumed.insert_many(events[1_700:])

        identical(straight, resumed)
        assert resumed._slot_of == straight._slot_of
