"""Statistical quality of the hash functions (what the accuracy of every
summary ultimately rests on)."""

from __future__ import annotations

import random

from repro.hashing.bobhash import bob_hash
from repro.hashing.family import HashFamily, splitmix64


def chi_square_uniform(counts) -> float:
    """Chi-square statistic against the uniform distribution."""
    total = sum(counts)
    expected = total / len(counts)
    return sum((c - expected) ** 2 / expected for c in counts)


class TestSplitmixQuality:
    def test_per_bit_balance(self):
        """Each output bit is ~50/50 over sequential inputs."""
        ones = [0] * 64
        n = 20_000
        for x in range(n):
            h = splitmix64(x)
            for bit in range(64):
                ones[bit] += h >> bit & 1
        for bit in range(64):
            assert 0.46 < ones[bit] / n < 0.54, f"bit {bit} biased"

    def test_avalanche_mean(self):
        """A single flipped input bit flips ~32 output bits on average."""
        rng = random.Random(1)
        total_flips = 0
        trials = 4_000
        for _ in range(trials):
            x = rng.getrandbits(64)
            bit = 1 << rng.randrange(64)
            total_flips += bin(splitmix64(x) ^ splitmix64(x ^ bit)).count("1")
        mean = total_flips / trials
        assert 30 < mean < 34

    def test_bucket_chi_square(self):
        """Sequential keys into 64 buckets pass a loose chi-square check
        (df=63; values under ~120 are unremarkable)."""
        counts = [0] * 64
        family = HashFamily(seed=17)
        for key in range(32_000):
            counts[family.bucket(0, key, 64)] += 1
        assert chi_square_uniform(counts) < 150

    def test_family_members_uncorrelated(self):
        """Two members agree on bucket placement at ≈ the 1/n rate."""
        family = HashFamily(seed=23)
        n = 64
        agreements = sum(
            1
            for key in range(20_000)
            if family.bucket(0, key, n) == family.bucket(1, key, n)
        )
        rate = agreements / 20_000
        assert abs(rate - 1 / n) < 0.01


class TestBobHashQuality:
    def test_bucket_chi_square(self):
        counts = [0] * 64
        for key in range(16_000):
            counts[bob_hash(key.to_bytes(8, "little"), 7) % 64] += 1
        assert chi_square_uniform(counts) < 150

    def test_avalanche_mean(self):
        """~16 of 32 output bits flip per flipped input bit."""
        rng = random.Random(2)
        total = 0
        trials = 2_000
        for _ in range(trials):
            x = rng.getrandbits(64)
            bit = rng.randrange(64)
            a = bob_hash(x.to_bytes(8, "little"), 0)
            b = bob_hash((x ^ (1 << bit)).to_bytes(8, "little"), 0)
            total += bin(a ^ b).count("1")
        mean = total / trials
        assert 14 < mean < 18

    def test_seeds_decorrelate(self):
        matches = sum(
            1
            for key in range(10_000)
            if bob_hash(key.to_bytes(8, "little"), 1) % 64
            == bob_hash(key.to_bytes(8, "little"), 2) % 64
        )
        assert abs(matches / 10_000 - 1 / 64) < 0.01
