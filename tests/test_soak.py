"""Chaos soak: long random operation sequences across every summary.

One extended randomized run per summary class, interleaving inserts,
period boundaries, mid-stream queries, top-k calls and (where supported)
finalize — the access pattern of a long-lived service rather than the
tidy run/evaluate cycle.  Invariants are checked throughout; the goal is
to shake out state-machine bugs that scripted tests never reach.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.combined.two_structure import TwoStructureSignificant
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.core.windowed import WindowedLTC
from repro.membership.bloom import BloomFilter
from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.persistent.small_space import SmallSpacePersistent
from repro.persistent.ss_persistent import SpaceSavingPersistent
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK
from repro.summaries.frequent import Frequent
from repro.summaries.lossy_counting import LossyCounting
from repro.summaries.space_saving import SpaceSaving


def build_all():
    return {
        "LTC": LTC(
            LTCConfig(num_buckets=4, bucket_width=4, items_per_period=37)
        ),
        "FastLTC": FastLTC(
            LTCConfig(num_buckets=4, bucket_width=4, items_per_period=37)
        ),
        "WindowedLTC": WindowedLTC(num_buckets=4, window=5, bucket_width=4),
        "SpaceSaving": SpaceSaving(24),
        "LossyCounting": LossyCounting(24),
        "Frequent": Frequent(24),
        "SketchTopK": SketchTopK(CUSketch(128, rows=3), 12),
        "PIE": PIE(cells_per_period=256),
        "SketchPersistent": SketchPersistent(
            CountMinSketch(128, rows=3), BloomFilter(2048), 12
        ),
        "SpaceSavingPersistent": SpaceSavingPersistent(24, BloomFilter(2048)),
        "SmallSpacePersistent": SmallSpacePersistent(64, sample_rate=0.5),
        "TwoStructure": TwoStructureSignificant(
            CountMinSketch(128, rows=3),
            CountMinSketch(128, rows=3),
            BloomFilter(2048),
            12,
            1.0,
            1.0,
        ),
    }


# The scheduled nightly CI job soaks 10x longer (REPRO_SOAK_STEPS=60000).
SOAK_STEPS = int(os.environ.get("REPRO_SOAK_STEPS", "6000"))


@pytest.mark.parametrize("name", sorted(build_all()))
def test_soak(name):
    rng = random.Random(hash(name) & 0xFFFF)
    summary = build_all()[name]
    supports_finalize = hasattr(summary, "finalize")
    for step in range(SOAK_STEPS):
        roll = rng.random()
        if roll < 0.80:
            summary.insert(rng.randrange(300))
        elif roll < 0.88:
            summary.end_period()
        elif roll < 0.95:
            value = summary.query(rng.randrange(400))
            assert value == value  # not NaN
            assert value >= -1e12
        else:
            k = rng.randint(1, 20)
            top = summary.top_k(k)
            assert len(top) <= k
            sigs = [r.significance for r in top]
            assert sigs == sorted(sigs, reverse=True)
        if supports_finalize and step % 997 == 0 and name != "PIE":
            # PIE's finalize decodes (expensive); others must tolerate
            # arbitrary mid-stream finalize calls.
            summary.finalize()
    # End-of-run sanity: reports are well-formed and queryable.
    for report in summary.top_k(10):
        value = summary.query(report.item)
        assert value >= 0 or name == "TwoStructure"  # count sketch-free here
