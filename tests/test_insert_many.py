"""Batched ingestion ≡ per-event ingestion, cell for cell.

The batch fast paths (``StreamSummary.insert_many`` overrides, the
sketches' ``update_many``, ``PeriodicStream.run(batched=True)``) are pure
mechanical accelerations: every test here pins their output exactly equal
to the one-at-a-time reference on arbitrary streams and chunkings.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ClockPointer
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.cu import CUSketch
from repro.streams.synthetic import zipf_stream

# ----------------------------------------------------------------- clock


class TestClockOnArrivals:
    @given(
        st.integers(1, 40),
        st.integers(1, 60),
        st.lists(st.integers(0, 25), max_size=60),
    )
    @settings(max_examples=150, deadline=None)
    def test_on_arrivals_equals_repeated_on_arrival(self, m, n, counts):
        a = ClockPointer(m, n)
        b = ClockPointer(m, n)
        for count in counts:
            expected = []
            for _ in range(count):
                expected.extend(a.on_arrival())
            assert b.on_arrivals(count) == expected
            assert (a.hand, a._acc, a.scanned_in_period) == (
                b.hand,
                b._acc,
                b.scanned_in_period,
            )

    @given(st.integers(1, 40), st.integers(1, 60), st.integers(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_arrivals_until_harvest_is_exact(self, m, n, warmup):
        """The promised free arrivals harvest nothing; the next one does
        (unless the sweep is already complete for the period)."""
        clock = ClockPointer(m, n)
        for _ in range(warmup):
            clock.on_arrival()
        free = clock.arrivals_until_harvest()
        assert free >= 0
        for _ in range(free):
            assert clock.on_arrival() == []
        if clock.scanned_in_period < clock.num_cells:
            assert clock.on_arrival() != []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ClockPointer(4, 10).on_arrivals(-1)


# ------------------------------------------------------------- LTC family

CONFIG_STRATEGY = st.fixed_dictionaries(
    {
        "num_buckets": st.integers(1, 4),
        "bucket_width": st.integers(1, 6),
        "items_per_period": st.integers(1, 60),
        "deviation_eliminator": st.booleans(),
        "replacement_policy": st.sampled_from(
            [None, "longtail", "one", "space-saving"]
        ),
    }
)


def chunked(events, boundaries):
    """Split ``events`` at the given sorted boundary positions."""
    chunks = []
    prev = 0
    for b in sorted(set(boundaries)):
        if 0 < b < len(events):
            chunks.append(events[prev:b])
            prev = b
    chunks.append(events[prev:])
    return chunks


def same_state(a: LTC, b: LTC) -> None:
    assert list(a.cells()) == list(b.cells())
    assert a._clock.hand == b._clock.hand
    assert a._clock._acc == b._clock._acc
    assert a._clock.scanned_in_period == b._clock.scanned_in_period


@pytest.mark.parametrize("cls", [LTC, FastLTC], ids=["LTC", "FastLTC"])
class TestInsertManyEquivalence:
    @given(
        cfg=CONFIG_STRATEGY,
        events=st.lists(st.integers(0, 25), max_size=300),
        boundaries=st.lists(st.integers(0, 300), max_size=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_chunking_matches_per_event(
        self, cls, cfg, events, boundaries
    ):
        config = LTCConfig(alpha=1.0, beta=1.0, **cfg)
        one, many = cls(config), cls(config)
        for item in events:
            one.insert(item)
        for chunk in chunked(events, boundaries):
            many.insert_many(chunk)
        same_state(one, many)

    @given(
        cfg=CONFIG_STRATEGY,
        events=st.lists(st.integers(0, 25), max_size=200),
        periods=st.integers(1, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_with_period_boundaries(self, cls, cfg, events, periods):
        """insert_many interleaved with end_period matches the reference."""
        config = LTCConfig(alpha=1.0, beta=1.0, **cfg)
        one, many = cls(config), cls(config)
        n = max(1, len(events) // periods)
        for start in range(0, len(events) or 1, n):
            block = events[start : start + n]
            for item in block:
                one.insert(item)
            one.end_period()
            many.insert_many(block)
            many.end_period()
        same_state(one, many)
        one.finalize()
        many.finalize()
        assert list(one.cells()) == list(many.cells())

    def test_mixed_insert_and_insert_many(self, cls):
        rng = random.Random(11)
        events = [rng.randrange(50) for _ in range(2_000)]
        config = LTCConfig(
            num_buckets=4, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=37,
        )
        one, mixed = cls(config), cls(config)
        for item in events:
            one.insert(item)
        i = 0
        while i < len(events):
            if rng.random() < 0.5:
                mixed.insert(events[i])
                i += 1
            else:
                j = min(len(events), i + rng.randrange(1, 40))
                mixed.insert_many(events[i:j])
                i = j
        same_state(one, mixed)

    def test_accepts_iterators(self, cls):
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=5,
        )
        one, many = cls(config), cls(config)
        events = [1, 2, 1, 3, 1, 2, 4]
        for item in events:
            one.insert(item)
        many.insert_many(iter(events))
        same_state(one, many)

    def test_empty_batch_is_a_no_op(self, cls):
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=5,
        )
        summary = cls(config)
        summary.insert_many([])
        assert len(summary) == 0
        assert summary._clock._acc == 0


class TestFastLTCIndexAfterBatch:
    def test_index_consistent_after_batched_churn(self):
        rng = random.Random(19)
        events = [rng.randrange(2_000) for _ in range(5_000)]
        config = LTCConfig(
            num_buckets=4, bucket_width=2, alpha=1.0, beta=1.0,
            items_per_period=500,
        )
        fast = FastLTC(config)
        fast.insert_many(events)
        for item, slot in fast._slot_of.items():
            assert fast._keys[slot] == item
        occupied = {j for j, key in enumerate(fast._keys) if key is not None}
        assert occupied == set(fast._slot_of.values())


# --------------------------------------------------------------- sketches

SKETCHES = [
    (CountMinSketch, "CM"),
    (CUSketch, "CU"),
    (CountSketch, "Count"),
]


@pytest.mark.parametrize(
    "sketch_cls", [cls for cls, _ in SKETCHES], ids=[n for _, n in SKETCHES]
)
class TestSketchUpdateMany:
    @given(
        keys=st.lists(st.integers(0, 60), max_size=300),
        width=st.integers(1, 40),
        rows=st.integers(1, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_update_many_matches_sequential(self, sketch_cls, keys, width, rows):
        one = sketch_cls(width=width, rows=rows)
        many = sketch_cls(width=width, rows=rows)
        for key in keys:
            one.update(key)
        many.update_many(keys)
        assert one._tables == many._tables

    @given(
        keys=st.lists(st.integers(0, 30), max_size=150),
        delta=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_many_with_delta(self, sketch_cls, keys, delta):
        one = sketch_cls(width=16, rows=3)
        many = sketch_cls(width=16, rows=3)
        for key in keys:
            one.update(key, delta)
        many.update_many(keys, delta)
        assert one._tables == many._tables

    def test_large_and_negative_keys(self, sketch_cls):
        """Batch key canonicalisation matches the scalar paths' masking."""
        keys = [0, 2**63, 2**64 - 1, 2**70 + 3, -5]
        one = sketch_cls(width=16, rows=3)
        many = sketch_cls(width=16, rows=3)
        for key in keys:
            one.update(key & (2**64 - 1))
        many.update_many(keys)
        assert one._tables == many._tables

    def test_empty_batch(self, sketch_cls):
        sketch = sketch_cls(width=8, rows=2)
        sketch.update_many([])
        assert all(not any(t) for t in sketch._tables)

    def test_fallback_loop_without_numpy(self, sketch_cls, monkeypatch):
        module = __import__(
            sketch_cls.__module__, fromlist=["numpy_available"]
        )
        monkeypatch.setattr(module, "numpy_available", lambda: False)
        one = sketch_cls(width=16, rows=3)
        many = sketch_cls(width=16, rows=3)
        keys = [1, 2, 1, 3, 1, 2, 9, 9]
        for key in keys:
            one.update(key)
        many.update_many(keys)
        assert one._tables == many._tables


class TestCUSpecifics:
    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            CUSketch(width=8).update_many([1, 2], delta=-1)

    def test_zero_delta_is_noop(self):
        sketch = CUSketch(width=8)
        sketch.update_many([1, 2, 3], delta=0)
        assert all(not any(t) for t in sketch._tables)

    def test_order_sensitivity_is_preserved(self):
        """CU batches must replay stream order, not sorted-unique order:
        on a colliding workload the batched tables equal the sequential
        tables for *both* orderings of the same multiset."""
        forward = [7, 3, 7, 3, 7, 11, 3]
        backward = list(reversed(forward))
        for order in (forward, backward):
            one = CUSketch(width=2, rows=2)
            many = CUSketch(width=2, rows=2)
            for key in order:
                one.update(key)
            many.update_many(order)
            assert one._tables == many._tables


# ------------------------------------------------------------ stream driver


class TestBatchedRun:
    def ltc_config(self, stream, **overrides):
        cfg = dict(
            num_buckets=8,
            bucket_width=4,
            alpha=1.0,
            beta=1.0,
            items_per_period=stream.period_length,
        )
        cfg.update(overrides)
        return LTCConfig(**cfg)

    @pytest.mark.parametrize("cls", [LTC, FastLTC], ids=["LTC", "FastLTC"])
    def test_batched_run_identical(self, cls):
        stream = zipf_stream(
            num_events=4_000, num_distinct=500, skew=1.0, num_periods=8, seed=13
        )
        config = self.ltc_config(stream)
        one, many = cls(config), cls(config)
        stream.run(one)
        stream.run(many, batched=True)
        assert list(one.cells()) == list(many.cells())
        assert one.top_k(50) == many.top_k(50)

    def test_batched_run_uses_base_fallback(self):
        """Summaries without a specialised batch path still run batched
        via the StreamSummary default loop."""
        from repro.metrics.memory import MemoryBudget, kb
        from repro.sketches.topk import SketchTopK

        stream = zipf_stream(
            num_events=2_000, num_distinct=300, skew=1.0, num_periods=4, seed=9
        )
        one = SketchTopK.from_memory(CountMinSketch, MemoryBudget(kb(2)), k=20)
        many = SketchTopK.from_memory(CountMinSketch, MemoryBudget(kb(2)), k=20)
        stream.run(one)
        stream.run(many, batched=True)
        assert one.top_k(20) == many.top_k(20)
        assert one.sketch._tables == many.sketch._tables

    def test_time_binned_stream_batched(self):
        """Variable-size time bins feed insert_many per bin."""
        from repro.streams.io import TimeBinnedStream

        rng = random.Random(5)
        events = [rng.randrange(60) for _ in range(900)]
        boundaries = [100, 150, 600]
        stream = TimeBinnedStream(events=events, boundaries=boundaries)
        config = self.ltc_config(stream)
        one, many = LTC(config), LTC(config)
        stream.run(one)
        stream.run(many, batched=True)
        assert list(one.cells()) == list(many.cells())

    def test_merging_coordinator_batched_matches_per_event(self):
        from repro.distributed.coordinator import MergingCoordinator
        from repro.distributed.partition import partition_sharded

        stream = zipf_stream(
            num_events=3_000, num_distinct=400, skew=1.0, num_periods=6, seed=21
        )
        sites = partition_sharded(stream, num_sites=3)
        config = LTCConfig(
            num_buckets=16, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=1,
        )
        batched = MergingCoordinator(config).run(sites, k=30)
        per_event = MergingCoordinator(config, batched=False).run(sites, k=30)
        assert batched.top_k == per_event.top_k
        assert batched.communication_bytes == per_event.communication_bytes
