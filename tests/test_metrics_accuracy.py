"""Precision / ARE / AAE definitions (paper §V-A)."""

from __future__ import annotations

from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    precision,
    recall,
)


class TestPrecision:
    def test_full_overlap(self):
        assert precision([1, 2, 3], {1, 2, 3}) == 1.0

    def test_no_overlap(self):
        assert precision([4, 5], {1, 2}) == 0.0

    def test_partial(self):
        assert precision([1, 4], {1, 2}) == 0.5

    def test_empty_exact_set(self):
        assert precision([1], set()) == 1.0

    def test_duplicates_in_reported_ignored(self):
        assert precision([1, 1, 1], {1, 2}) == 0.5

    def test_recall_alias(self):
        assert recall([1, 4], {1, 2}) == 0.5


class TestARE:
    def test_exact_estimates(self):
        reported = [(1, 10.0), (2, 20.0)]
        truth = {1: 10.0, 2: 20.0}
        assert average_relative_error(reported, truth.get) == 0.0

    def test_simple_values(self):
        reported = [(1, 15.0), (2, 10.0)]
        truth = {1: 10.0, 2: 20.0}
        # |10-15|/10 = 0.5 ; |20-10|/20 = 0.5 → mean 0.5
        assert average_relative_error(reported, truth.get) == 0.5

    def test_zero_truth_counts_as_one(self):
        reported = [(1, 99.0)]
        assert average_relative_error(reported, lambda _: 0.0) == 1.0

    def test_empty_reported(self):
        assert average_relative_error([], lambda _: 1.0) == 0.0

    def test_symmetric_in_error_direction(self):
        truth = {1: 10.0}
        over = average_relative_error([(1, 12.0)], truth.get)
        under = average_relative_error([(1, 8.0)], truth.get)
        assert over == under


class TestAAE:
    def test_simple(self):
        reported = [(1, 15.0), (2, 10.0)]
        truth = {1: 10.0, 2: 20.0}
        assert average_absolute_error(reported, truth.get) == 7.5

    def test_empty(self):
        assert average_absolute_error([], lambda _: 0.0) == 0.0
