"""Frequent / Misra–Gries: the deterministic N/(k+1) guarantee."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.summaries.frequent import Frequent


class TestGuarantees:
    def test_mg_two_sided_bound(self, small_zipf, small_zipf_truth):
        """f − N/(k+1) ≤ f̂ ≤ f for every item (tracked or not)."""
        capacity = 100
        mg = Frequent(capacity=capacity)
        small_zipf.run(mg)
        slack = len(small_zipf) / (capacity + 1)
        for item in small_zipf_truth.items()[:500]:
            real = small_zipf_truth.frequency(item)
            est = mg.query(item)
            assert est <= real
            assert est >= real - slack

    def test_exact_when_capacity_covers_distinct(self):
        events = [1, 1, 2, 3, 3, 3]
        mg = Frequent(capacity=10)
        for item in events:
            mg.insert(item)
        counts = Counter(events)
        for item, real in counts.items():
            assert mg.query(item) == real

    def test_majority_item_always_tracked(self):
        events = [7] * 60 + list(range(50))
        import random

        random.Random(3).shuffle(events)
        mg = Frequent(capacity=4)
        for item in events:
            mg.insert(item)
        assert mg.query(7) > 0

    def test_capacity_respected(self):
        mg = Frequent(capacity=5)
        for item in range(1_000):
            mg.insert(item)
        assert len(mg) <= 5


class TestBehaviour:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Frequent(0)

    def test_decrement_evicts_zeros(self):
        mg = Frequent(capacity=2)
        mg.insert(1)
        mg.insert(2)
        mg.insert(3)  # decrement-all: both fall to 0 and are purged
        assert len(mg) == 0
        assert mg.decrements == 1

    def test_top_k_order(self):
        mg = Frequent(capacity=10)
        for item, count in [(1, 5), (2, 9), (3, 2)]:
            for _ in range(count):
                mg.insert(item)
        top = mg.top_k(3)
        assert [r.item for r in top] == [2, 1, 3]

    def test_from_memory(self):
        assert Frequent.from_memory(MemoryBudget(kb(1))).capacity == 128
