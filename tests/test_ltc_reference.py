"""Differential testing: production LTC ≡ naive reference LTC.

The reference (tests/reference_ltc.py) follows the paper's prose with no
optimisation; any divergence in cell-level state after an arbitrary
stream exposes a bug in the production implementation's bit handling,
clock arithmetic or eviction logic.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from tests.conftest import make_stream
from tests.reference_ltc import ReferenceLTC


def run_both(events, num_periods, w, d, alpha, beta, ltr, de, finalize=True):
    num_periods = max(1, min(num_periods, len(events) or 1))
    stream = make_stream(events, num_periods=num_periods) if events else None
    n = stream.period_length if stream else 1
    real = LTC(
        LTCConfig(
            num_buckets=w,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=n,
            longtail_replacement=ltr,
            deviation_eliminator=de,
        )
    )
    ref = ReferenceLTC(
        num_buckets=w,
        bucket_width=d,
        alpha=alpha,
        beta=beta,
        items_per_period=n,
        longtail_replacement=ltr,
        deviation_eliminator=de,
    )
    if stream:
        for period in stream.iter_periods():
            for item in period:
                real.insert(item)
                ref.insert(item)
            real.end_period()
            ref.end_period()
    if finalize:
        real.finalize()
        ref.finalize()
    return real, ref


def real_snapshot(ltc: LTC):
    return [
        (c.key, c.frequency, c.persistency, c.flag_even, c.flag_odd)
        for c in ltc.cells()
    ]


class TestCellLevelEquivalence:
    @given(
        st.lists(st.integers(0, 25), max_size=300),
        st.integers(1, 6),
        st.integers(1, 3),
        st.integers(1, 6),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_identical_final_state(self, events, periods, w, d, ltr, de):
        real, ref = run_both(
            events, periods, w, d, alpha=1.0, beta=1.0, ltr=ltr, de=de
        )
        assert real_snapshot(real) == ref.snapshot()

    @given(
        st.lists(st.integers(0, 25), max_size=300),
        st.integers(1, 6),
        st.sampled_from([(1.0, 0.0), (0.0, 1.0), (1.0, 10.0), (2.5, 0.5)]),
    )
    @settings(max_examples=80, deadline=None)
    def test_identical_across_significance_weights(self, events, periods, weights):
        alpha, beta = weights
        real, ref = run_both(
            events, periods, w=2, d=4, alpha=alpha, beta=beta, ltr=True, de=True
        )
        assert real_snapshot(real) == ref.snapshot()

    def test_identical_without_finalize(self):
        rng = random.Random(5)
        events = [rng.randrange(15) for _ in range(400)]
        real, ref = run_both(
            events, 8, w=2, d=3, alpha=1.0, beta=1.0, ltr=True, de=True,
            finalize=False,
        )
        assert real_snapshot(real) == ref.snapshot()

    def test_identical_estimates_on_random_stream(self):
        rng = random.Random(11)
        events = [rng.randrange(60) for _ in range(2_000)]
        real, ref = run_both(
            events, 10, w=4, d=4, alpha=1.0, beta=5.0, ltr=True, de=True
        )
        for item in range(60):
            assert real.estimate(item) == ref.estimate(item)

    def test_large_alphabet_heavy_eviction(self):
        rng = random.Random(13)
        events = [rng.randrange(500) for _ in range(3_000)]
        real, ref = run_both(
            events, 6, w=3, d=2, alpha=1.0, beta=1.0, ltr=True, de=True
        )
        assert real_snapshot(real) == ref.snapshot()
