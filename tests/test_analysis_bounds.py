"""Correct-rate and error bounds (§IV) — including conservativeness
against the measured behaviour of the real structure (the paper's Fig. 7)."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.bounds import (
    correct_rate_lower_bound,
    error_probability_bound,
    expected_decrements,
    mean_topk_correct_rate_bound,
    p_small,
    useful_probability,
)
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream


class TestPSmall:
    def test_value(self):
        assert p_small(8) == 0.125

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            p_small(0)


class TestUsefulProbability:
    def test_larger_item_is_one_over_w(self):
        assert useful_probability(f_i=100, f=10, w=50) == 1 / 50

    def test_smaller_item_scaled(self):
        assert useful_probability(f_i=5, f=9, w=10) == pytest.approx(0.05)

    def test_monotone_in_f_i(self):
        values = [useful_probability(f_i, 10, 10) for f_i in (1, 5, 9, 11, 50)]
        assert values == sorted(values)

    def test_rejects_bad_w(self):
        with pytest.raises(ValueError):
            useful_probability(1, 1, 0)


class TestDPRecursion:
    def brute_force(self, ks, limit):
        """Exact Poisson-binomial tail by enumeration."""
        total = 0.0
        n = len(ks)
        for pattern in itertools.product([0, 1], repeat=n):
            if sum(pattern) <= limit:
                prob = 1.0
                for bit, k in zip(pattern, ks):
                    prob *= k if bit else (1 - k)
                total += prob
        return total

    def test_matches_enumeration(self):
        freqs = [50, 30, 10, 5, 2]
        w, d, f = 4, 3, 8
        ks = [useful_probability(fi, f, w) for fi in freqs]
        expected = self.brute_force(ks, d - 2)
        assert correct_rate_lower_bound(freqs, w, d, f) == pytest.approx(expected)

    def test_d_below_two_is_zero(self):
        assert correct_rate_lower_bound([1.0], w=2, d=1, f=1) == 0.0

    def test_probability_range(self):
        freqs = list(range(1, 200))
        bound = correct_rate_lower_bound(freqs, w=10, d=8, f=50)
        assert 0.0 <= bound <= 1.0

    def test_more_buckets_raise_bound(self):
        freqs = [float(x) for x in range(1, 100)]
        low_w = correct_rate_lower_bound(freqs, w=2, d=4, f=50)
        high_w = correct_rate_lower_bound(freqs, w=50, d=4, f=50)
        assert high_w >= low_w

    def test_wider_buckets_raise_bound(self):
        freqs = [float(x) for x in range(1, 100)]
        narrow = correct_rate_lower_bound(freqs, w=10, d=2, f=50)
        wide = correct_rate_lower_bound(freqs, w=10, d=8, f=50)
        assert wide >= narrow


class TestErrorBound:
    def test_expected_decrements(self):
        freqs = [100.0, 50.0, 25.0, 10.0]
        # Rank 1 item: decrementers are ranks 2,3 → (25+10)/w · 1/d.
        assert expected_decrements(freqs, 1, w=5, d=4) == pytest.approx(
            (35 / 5) * 0.25
        )

    def test_bound_clipped_to_one(self):
        freqs = [1000.0] * 100
        bound = error_probability_bound(
            freqs, 0, w=1, d=1, alpha=1, beta=1, epsilon=1e-9, total=10.0
        )
        assert bound == 1.0

    def test_bound_decreases_with_epsilon(self):
        freqs = [float(x) for x in range(200, 0, -1)]
        loose = error_probability_bound(
            freqs, 0, w=10, d=8, alpha=1, beta=0, epsilon=1e-3, total=1e4
        )
        tight = error_probability_bound(
            freqs, 0, w=10, d=8, alpha=1, beta=0, epsilon=1e-2, total=1e4
        )
        assert tight <= loose

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            error_probability_bound([1.0], 0, 1, 1, 1, 1, epsilon=0, total=1)


class TestBoundsAreConservative:
    """The Fig. 7 check: theory bounds the measured values correctly."""

    @pytest.fixture(scope="class")
    def workload(self):
        stream = zipf_stream(
            num_events=20_000, num_distinct=3_000, skew=1.0, num_periods=10, seed=5
        )
        return stream, GroundTruth(stream)

    def test_correct_rate_bound_below_measured(self, workload):
        stream, truth = workload
        w, d, k = 150, 8, 200
        ltc = LTC(
            LTCConfig(
                num_buckets=w,
                bucket_width=d,
                alpha=1.0,
                beta=0.0,
                items_per_period=stream.period_length,
                longtail_replacement=False,
            )
        )
        stream.run(ltc)
        exact_top = truth.top_k(k, 1.0, 0.0)
        correct = sum(
            1 for item, sig in exact_top if ltc.query(item) == sig
        )
        measured = correct / k
        freqs = truth.frequencies_sorted()
        bound = mean_topk_correct_rate_bound(freqs, w, d, k, sample=16)
        assert bound <= measured + 0.05  # small slack for sampling noise

    def test_error_bound_above_measured(self, workload):
        stream, truth = workload
        w, d = 60, 8
        epsilon, n = 1e-3, truth.num_events
        ltc = LTC(
            LTCConfig(
                num_buckets=w,
                bucket_width=d,
                alpha=1.0,
                beta=0.0,
                items_per_period=stream.period_length,
                longtail_replacement=False,
            )
        )
        stream.run(ltc)
        freqs = truth.frequencies_sorted()
        ranks = range(0, 200, 10)
        exact_top = truth.top_k(200, 1.0, 0.0)
        violations = 0
        bound_total = 0.0
        for rank in ranks:
            item, sig = exact_top[rank]
            measured_err = sig - ltc.query(item)
            if measured_err >= epsilon * n:
                violations += 1
            bound_total += error_probability_bound(
                freqs, rank, w, d, alpha=1, beta=0, epsilon=epsilon, total=n
            )
        measured_rate = violations / len(list(ranks))
        mean_bound = bound_total / len(list(ranks))
        assert measured_rate <= mean_bound + 0.05
