"""End-to-end time-driven operation: timestamped traces through LTC."""

from __future__ import annotations

import io
import random

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.throughput import measure_query_throughput
from repro.streams.ground_truth import GroundTruth
from repro.streams.io import load_timestamped


def drive_timed(ltc: LTC, records, period_seconds: float) -> None:
    """Replay timestamped records, firing end_period at boundaries."""
    if not records:
        return
    t0 = records[0][0]
    next_boundary = t0 + period_seconds
    for t, item in records:
        while t >= next_boundary:
            ltc.end_period()
            next_boundary += period_seconds
        ltc.insert_timed(item, timestamp=t, period_seconds=period_seconds)
    ltc.end_period()
    ltc.finalize()


class TestTimedPipeline:
    def make_records(self, seed=3):
        """10 seconds of traffic, one period per second; item 7 appears in
        the even seconds only, item 9 in every second."""
        rng = random.Random(seed)
        records = []
        for second in range(10):
            if second % 2 == 0:
                records.append((second + 0.3, 7))
            records.append((second + 0.5, 9))
            for _ in range(20):
                records.append((second + rng.random(), rng.getrandbits(24)))
        records.sort()
        return records

    def test_persistency_matches_wall_clock_definition(self):
        records = self.make_records()
        ltc = LTC(
            LTCConfig(
                num_buckets=64,
                bucket_width=8,
                alpha=0.0,
                beta=1.0,
                items_per_period=1,  # unused in timed mode
            )
        )
        drive_timed(ltc, records, period_seconds=1.0)
        assert ltc.estimate(9)[1] == 10
        assert ltc.estimate(7)[1] == 5

    def test_timed_matches_trace_loader_ground_truth(self):
        records = self.make_records(seed=5)
        text = "".join(f"{item} {t}\n" for t, item in records)
        stream = load_timestamped(io.StringIO(text), num_periods=10)
        truth = GroundTruth(stream)

        ltc = LTC(
            LTCConfig(
                num_buckets=64,
                bucket_width=8,
                alpha=0.0,
                beta=1.0,
                items_per_period=1,
            )
        )
        drive_timed(ltc, records, period_seconds=1.0)
        # Uncontended (64×8 cells vs ~200 distinct): exact agreement with
        # the loader's time-binned ground truth for frequently-seen items.
        for item in (7, 9):
            assert ltc.estimate(item)[1] == truth.persistency(item)

    def test_query_throughput_helper(self):
        records = self.make_records()
        ltc = LTC(
            LTCConfig(
                num_buckets=16, bucket_width=8, alpha=0.0, beta=1.0,
                items_per_period=1,
            )
        )
        drive_timed(ltc, records, period_seconds=1.0)
        result = measure_query_throughput(ltc, [7, 9, 123456], name="ltc")
        assert result.events == 3
        assert result.mops > 0
