"""Multi-core sharded ingestion: differential + robustness suite.

The parallel engine's contract is *bit-identity* with the sequential
coordinator: a worker process replays exactly the per-site batched loop,
so on the same partition the merged report must match item for item.
The crash tests drive the retry machinery with the engine's
fault-injection hook (a worker hard-exits mid-shard, as if OOM-killed).
"""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.distributed.coordinator import MergingCoordinator
from repro.distributed.parallel import (
    ParallelMergingCoordinator,
    ShardedPipeline,
    WorkerCrashError,
    ingest_shard,
    process_pool_available,
)
from repro.distributed.partition import partition_sharded
from repro.streams.io import TimeBinnedStream
from repro.streams.synthetic import zipf_stream
from tests.conftest import make_stream

SHARD_SEED = 0xD15C


@pytest.fixture(scope="module")
def logical_stream():
    return zipf_stream(
        num_events=8_000, num_distinct=1_500, skew=1.1, num_periods=8, seed=21
    )


@pytest.fixture(scope="module")
def config():
    return LTCConfig(
        num_buckets=64,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=1,  # overridden per site
    )


@pytest.fixture(scope="module")
def sites(logical_stream):
    return partition_sharded(logical_stream, 4, seed=SHARD_SEED)


@pytest.fixture(scope="module")
def sequential_report(config, sites):
    return MergingCoordinator(config).run(sites, 50)


def assert_reports_equal(parallel, sequential):
    """Field-by-field identity, ignoring the parallel-only IPC counter."""
    assert parallel.top_k == sequential.top_k
    assert parallel.communication_bytes == sequential.communication_bytes
    assert parallel.num_sites == sequential.num_sites


class TestDifferential:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_sequential_on_item_shards(
        self, config, sites, sequential_report, workers
    ):
        report = ParallelMergingCoordinator(config, max_workers=workers).run(
            sites, 50
        )
        assert_reports_equal(report, sequential_report)

    def test_single_worker_fallback_matches(
        self, config, sites, sequential_report
    ):
        """max_workers=1 skips the pool entirely yet answers identically."""
        report = ParallelMergingCoordinator(config, max_workers=1).run(sites, 50)
        assert_reports_equal(report, sequential_report)

    def test_pipeline_matches_sequential_on_same_split(
        self, config, logical_stream, sequential_report
    ):
        pipeline = ShardedPipeline(
            config, num_shards=4, max_workers=2, seed=SHARD_SEED
        )
        report = pipeline.run(logical_stream, 50)
        assert_reports_equal(report, sequential_report)

    def test_worker_body_equals_batched_site_run(self, config, sites):
        """ingest_shard is literally run(ltc, batched=True) + to_bytes."""
        from repro.core.ltc import LTC
        from repro.core.serialize import to_bytes

        site = sites[0]
        site_config = config.with_options(items_per_period=site.period_length)
        reference = LTC(site_config)
        site.run(reference, batched=True)
        assert ingest_shard(site_config, site.period_batches()) == to_bytes(
            reference
        )

    def test_ipc_accounting_only_on_parallel_path(
        self, config, sites, sequential_report
    ):
        report = ParallelMergingCoordinator(config, max_workers=2).run(sites, 50)
        assert report.ingest_ipc_bytes > 0
        assert sequential_report.ingest_ipc_bytes == 0


class TestCrashRecovery:
    @pytest.mark.skipif(
        not process_pool_available(), reason="platform lacks process pools"
    )
    def test_retry_recovers_from_mid_run_crash(
        self, config, sites, sequential_report
    ):
        """A worker dying mid-shard is retried and the answer is unchanged."""
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=2
        )
        coordinator._crash_plan = {1: 1}  # shard 1 dies once, mid-run
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)

    @pytest.mark.skipif(
        not process_pool_available(), reason="platform lacks process pools"
    )
    def test_persistent_crash_surfaces_clear_error(self, config, sites):
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=1
        )
        coordinator._crash_plan = {0: 99}  # shard 0 dies on every attempt
        with pytest.raises(WorkerCrashError) as excinfo:
            coordinator.run(sites, 50)
        error = excinfo.value
        # The sick shard is named (pool breakage may add collateral shards
        # that were in flight when the final crash poisoned the pool).
        assert 0 in error.shards
        assert error.max_retries == 1
        assert "retries" in str(error)


class TestValidation:
    def test_rejects_bad_worker_count(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_workers=0)

    def test_rejects_negative_retries(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_retries=-1)

    def test_rejects_empty_site_list(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_workers=1).run([], 10)

    def test_rejects_bad_shard_count(self, config):
        with pytest.raises(ValueError):
            ShardedPipeline(config, num_shards=0)


class TestShardSlicing:
    def test_period_batches_matches_iter_periods(self, logical_stream):
        batches = logical_stream.period_batches()
        assert batches == [list(p) for p in logical_stream.iter_periods()]
        assert sum(len(b) for b in batches) == len(logical_stream)

    def test_period_batches_on_count_based_remainder(self):
        stream = make_stream([1, 2, 3, 4, 5, 6, 7], num_periods=3)
        batches = stream.period_batches()
        assert len(batches) == 3
        assert batches[-1] == [5, 6, 7]  # last period absorbs the remainder

    def test_period_batches_on_time_binned_stream(self):
        stream = TimeBinnedStream(
            events=[10, 11, 12, 13], boundaries=[1, 1, 3], name="tb"
        )
        assert stream.period_batches() == [[10], [], [11, 12], [13]]
