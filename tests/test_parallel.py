"""Multi-core sharded ingestion: differential + robustness suite.

The parallel engine's contract is *bit-identity* with the sequential
coordinator: a worker process replays exactly the per-site batched loop,
so on the same partition the merged report must match item for item.
The crash tests drive the retry machinery with the engine's
fault-injection hook (a worker hard-exits mid-shard, as if OOM-killed).
"""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.distributed.coordinator import MergingCoordinator
from repro.distributed.parallel import (
    ParallelMergingCoordinator,
    ShardedPipeline,
    WorkerCrashError,
    ingest_shard,
    process_pool_available,
    worker_processes_available,
)
from repro.distributed.partition import partition_sharded, shard_of
from repro.streams.io import TimeBinnedStream
from repro.streams.synthetic import zipf_stream
from tests.conftest import make_stream

SHARD_SEED = 0xD15C

needs_processes = pytest.mark.skipif(
    not worker_processes_available(), reason="platform lacks worker processes"
)


@pytest.fixture(scope="module")
def logical_stream():
    return zipf_stream(
        num_events=8_000, num_distinct=1_500, skew=1.1, num_periods=8, seed=21
    )


@pytest.fixture(scope="module")
def config():
    return LTCConfig(
        num_buckets=64,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=1,  # overridden per site
    )


@pytest.fixture(scope="module")
def sites(logical_stream):
    return partition_sharded(logical_stream, 4, seed=SHARD_SEED)


@pytest.fixture(scope="module")
def sequential_report(config, sites):
    return MergingCoordinator(config).run(sites, 50)


def assert_reports_equal(parallel, sequential):
    """Field-by-field identity, ignoring the parallel-only IPC counter."""
    assert parallel.top_k == sequential.top_k
    assert parallel.communication_bytes == sequential.communication_bytes
    assert parallel.num_sites == sequential.num_sites


class TestDifferential:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_sequential_on_item_shards(
        self, config, sites, sequential_report, workers
    ):
        report = ParallelMergingCoordinator(config, max_workers=workers).run(
            sites, 50
        )
        assert_reports_equal(report, sequential_report)

    def test_single_worker_fallback_matches(
        self, config, sites, sequential_report
    ):
        """max_workers=1 skips the pool entirely yet answers identically."""
        report = ParallelMergingCoordinator(config, max_workers=1).run(sites, 50)
        assert_reports_equal(report, sequential_report)

    def test_pipeline_matches_sequential_on_same_split(
        self, config, logical_stream, sequential_report
    ):
        pipeline = ShardedPipeline(
            config, num_shards=4, max_workers=2, seed=SHARD_SEED
        )
        report = pipeline.run(logical_stream, 50)
        assert_reports_equal(report, sequential_report)

    def test_worker_body_equals_batched_site_run(self, config, sites):
        """ingest_shard is literally run(ltc, batched=True) + to_bytes."""
        from repro.core.ltc import LTC
        from repro.core.serialize import to_bytes

        site = sites[0]
        site_config = config.with_options(items_per_period=site.period_length)
        reference = LTC(site_config)
        site.run(reference, batched=True)
        assert ingest_shard(site_config, site.period_batches()) == to_bytes(
            reference
        )

    def test_ipc_accounting_only_on_parallel_path(
        self, config, sites, sequential_report
    ):
        report = ParallelMergingCoordinator(config, max_workers=2).run(sites, 50)
        assert report.ingest_ipc_bytes > 0
        assert sequential_report.ingest_ipc_bytes == 0

    @needs_processes
    def test_forced_single_process_worker_matches(
        self, config, sites, sequential_report
    ):
        """use_processes=True runs one persistent worker even at 1 shard/core."""
        report = ParallelMergingCoordinator(
            config, max_workers=1, use_processes=True
        ).run(sites, 50)
        assert_reports_equal(report, sequential_report)
        assert report.ingest_ipc_bytes > 0

    @needs_processes
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pickle_transport_matches_sequential(
        self, config, sites, sequential_report, workers
    ):
        report = ParallelMergingCoordinator(
            config,
            max_workers=workers,
            transport="pickle",
            use_processes=True,
        ).run(sites, 50)
        assert_reports_equal(report, sequential_report)

    def test_owned_key_ranges_are_disjoint_and_stable(self, logical_stream):
        """shard_of is the routing function partition_sharded applies."""
        shards = partition_sharded(logical_stream, 4, seed=SHARD_SEED)
        for index, shard in enumerate(shards):
            assert all(
                shard_of(item, 4, SHARD_SEED) == index
                for item in set(shard.events)
            )


class TestSingleSerialization:
    """Every outbound message is pickled once: shipped bytes == counted bytes."""

    @needs_processes
    def test_accounting_reuses_shipped_payloads(
        self, config, sites, sequential_report, monkeypatch
    ):
        from repro.distributed import parallel as parallel_mod

        shipped = []
        real_dumps = parallel_mod.dumps_ipc

        def counting_dumps(message):
            payload = real_dumps(message)
            shipped.append(payload)
            return payload

        monkeypatch.setattr(parallel_mod, "dumps_ipc", counting_dumps)
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, transport="pickle"
        )
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)
        # Accounting is exactly the sum of the payloads that went out the
        # pipe — a second serialisation pass (the old bug) would either
        # double the byte count or bypass the chokepoint entirely.
        assert report.ingest_ipc_bytes == sum(len(p) for p in shipped)
        # And the message count is exactly what the protocol requires:
        # one chunk per (shard, period) batch (all far below the chunk
        # size here) plus one finish message per worker.
        expected = sum(site.num_periods for site in sites) + 2
        assert len(shipped) == expected

    @needs_processes
    def test_shm_transport_ships_only_control_messages(self, config, sites):
        import pickle

        from repro.distributed import transport as transport_mod

        if not transport_mod.shm_available():
            pytest.skip("shared-memory transport unavailable")
        report = ParallelMergingCoordinator(
            config, max_workers=2, transport="shm"
        ).run(sites, 50)
        # Control tuples are a few dozen bytes; the events themselves
        # (thousands of ints) never touch the pipe.
        raw_events = len(pickle.dumps([s.events for s in sites]))
        assert 0 < report.ingest_ipc_bytes < raw_events / 10


class TestCrashRecovery:
    @pytest.mark.skipif(
        not process_pool_available(), reason="platform lacks process pools"
    )
    def test_single_crash_counts_exactly_one(
        self, config, sites, sequential_report
    ):
        """Regression: one dead worker at 4 shards is one crash, not four.

        The pool-based engine let a single death poison the whole pool —
        finished and unstarted shards' futures raised too, were counted
        as crashes, and were fully re-ingested.  Persistent workers are
        isolated: the report records exactly the one genuine death.
        """
        coordinator = ParallelMergingCoordinator(
            config, max_workers=4, max_retries=2
        )
        coordinator._crash_plan = {1: 1}  # exactly one worker dies, once
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)
        assert report.worker_crashes == 1

    @needs_processes
    def test_clean_run_reports_zero_crashes(self, config, sites):
        report = ParallelMergingCoordinator(config, max_workers=2).run(sites, 50)
        assert report.worker_crashes == 0

    @needs_processes
    def test_crash_obs_counter_matches_report(self, config, sites):
        from repro import obs

        reg = obs.enable()
        try:
            coordinator = ParallelMergingCoordinator(
                config, max_workers=4, max_retries=2
            )
            coordinator._crash_plan = {2: 1}
            report = coordinator.run(sites, 50)
            values = {
                m["name"]: m["value"]
                for m in reg.snapshot()["metrics"]
                if m["type"] == "counter"
            }
            assert report.worker_crashes == 1
            assert values["coordinator_worker_crashes_total"] == 1
        finally:
            obs.disable()

    @needs_processes
    def test_crash_recovery_on_pickle_transport(
        self, config, sites, sequential_report
    ):
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=2, transport="pickle"
        )
        coordinator._crash_plan = {1: 1}
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)
        assert report.worker_crashes == 1

    @needs_processes
    def test_crash_recovery_at_one_worker(
        self, config, sites, sequential_report
    ):
        """The whole key space on one persistent worker still survives it."""
        coordinator = ParallelMergingCoordinator(
            config, max_workers=1, max_retries=2, use_processes=True
        )
        coordinator._crash_plan = {0: 1}
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)
        assert report.worker_crashes == 1

    @pytest.mark.skipif(
        not process_pool_available(), reason="platform lacks process pools"
    )
    def test_retry_recovers_from_mid_run_crash(
        self, config, sites, sequential_report
    ):
        """A worker dying mid-shard is retried and the answer is unchanged."""
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=2
        )
        coordinator._crash_plan = {1: 1}  # shard 1 dies once, mid-run
        report = coordinator.run(sites, 50)
        assert_reports_equal(report, sequential_report)

    @pytest.mark.skipif(
        not process_pool_available(), reason="platform lacks process pools"
    )
    def test_persistent_crash_surfaces_clear_error(self, config, sites):
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=1
        )
        coordinator._crash_plan = {0: 99}  # shard 0 dies on every attempt
        with pytest.raises(WorkerCrashError) as excinfo:
            coordinator.run(sites, 50)
        error = excinfo.value
        # The sick shard is named, along with any other shards owned by
        # the same persistent worker (they are replayed together).
        assert 0 in error.shards
        assert error.max_retries == 1
        assert "retries" in str(error)


class TestValidation:
    def test_rejects_bad_worker_count(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_workers=0)

    def test_rejects_negative_retries(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_retries=-1)

    def test_rejects_empty_site_list(self, config):
        with pytest.raises(ValueError):
            ParallelMergingCoordinator(config, max_workers=1).run([], 10)

    def test_rejects_bad_shard_count(self, config):
        with pytest.raises(ValueError):
            ShardedPipeline(config, num_shards=0)


class TestShardSlicing:
    def test_period_batches_matches_iter_periods(self, logical_stream):
        batches = logical_stream.period_batches()
        assert batches == [list(p) for p in logical_stream.iter_periods()]
        assert sum(len(b) for b in batches) == len(logical_stream)

    def test_period_batches_on_count_based_remainder(self):
        stream = make_stream([1, 2, 3, 4, 5, 6, 7], num_periods=3)
        batches = stream.period_batches()
        assert len(batches) == 3
        assert batches[-1] == [5, 6, 7]  # last period absorbs the remainder

    def test_period_batches_on_time_binned_stream(self):
        stream = TimeBinnedStream(
            events=[10, 11, 12, 13], boundaries=[1, 1, 3], name="tb"
        )
        assert stream.period_batches() == [[10], [], [11, 12], [13]]

    def test_period_slices_agree_with_iter_periods(self, logical_stream):
        """period_slices is the single source of truth for period cuts."""
        streams = [
            logical_stream,
            make_stream([1, 2, 3, 4, 5, 6, 7], num_periods=3),
            TimeBinnedStream(
                events=[10, 11, 12, 13], boundaries=[1, 1, 3], name="tb"
            ),
        ]
        for stream in streams:
            slices = stream.period_slices()
            assert len(slices) == stream.num_periods
            assert [stream.events[s:e] for s, e in slices] == [
                list(p) for p in stream.iter_periods()
            ]

    def test_array_batches_roundtrip_exactly(self, logical_stream):
        """The zero-copy views carry the same values as the list batches."""
        pytest.importorskip("numpy")
        arrays = list(logical_stream.iter_period_arrays())
        assert [a.tolist() for a in arrays] == logical_stream.period_batches()
