"""PeriodicStream: period structure and the summary driver."""

from __future__ import annotations

import pytest

from repro.streams.model import PeriodicStream
from tests.conftest import make_stream


class TestConstruction:
    def test_rejects_zero_periods(self):
        with pytest.raises(ValueError):
            PeriodicStream(events=[1, 2], num_periods=0)

    def test_rejects_more_periods_than_events(self):
        with pytest.raises(ValueError):
            PeriodicStream(events=[1, 2], num_periods=3)

    def test_len(self):
        assert len(make_stream([1, 2, 3])) == 3


class TestPeriodStructure:
    def test_period_length(self):
        stream = make_stream(range(10), num_periods=5)
        assert stream.period_length == 2

    def test_iter_periods_covers_everything(self):
        stream = make_stream(range(10), num_periods=3)
        flattened = [item for period in stream.iter_periods() for item in period]
        assert flattened == list(range(10))

    def test_last_period_absorbs_remainder(self):
        stream = make_stream(range(10), num_periods=3)
        periods = list(stream.iter_periods())
        assert [len(p) for p in periods] == [3, 3, 4]

    def test_period_of(self):
        stream = make_stream(range(10), num_periods=5)
        assert stream.period_of(0) == 0
        assert stream.period_of(1) == 0
        assert stream.period_of(2) == 1
        assert stream.period_of(9) == 4

    def test_period_of_remainder_clamped_to_last(self):
        stream = make_stream(range(10), num_periods=3)
        assert stream.period_of(9) == 2

    def test_stats(self):
        stream = make_stream([1, 1, 2, 3], num_periods=2, name="s")
        stats = stream.stats
        assert stats.num_events == 4
        assert stats.num_distinct == 3
        assert stats.num_periods == 2
        assert "s" in str(stats)


class _Recorder:
    """Records driver callbacks in order."""

    def __init__(self):
        self.log = []

    def insert(self, item):
        self.log.append(("insert", item))

    def end_period(self):
        self.log.append(("end_period",))

    def finalize(self):
        self.log.append(("finalize",))


class TestRunDriver:
    def test_calls_in_order(self):
        stream = make_stream([1, 2, 3, 4], num_periods=2)
        recorder = _Recorder()
        stream.run(recorder)
        assert recorder.log == [
            ("insert", 1),
            ("insert", 2),
            ("end_period",),
            ("insert", 3),
            ("insert", 4),
            ("end_period",),
            ("finalize",),
        ]

    def test_summary_without_hooks(self):
        class Bare:
            def __init__(self):
                self.count = 0

            def insert(self, item):
                self.count += 1

        stream = make_stream(range(6), num_periods=2)
        bare = Bare()
        stream.run(bare)
        assert bare.count == 6


class TestHead:
    def test_head_truncates(self):
        stream = make_stream(range(100), num_periods=10)
        head = stream.head(30)
        assert len(head) == 30
        assert head.num_periods == 3

    def test_head_keeps_at_least_one_period(self):
        stream = make_stream(range(100), num_periods=10)
        assert stream.head(5).num_periods == 1

    def test_head_longer_than_stream(self):
        stream = make_stream(range(10), num_periods=2)
        assert len(stream.head(50)) == 10
