"""Two-structure combined significant-items baseline."""

from __future__ import annotations

from repro.combined.two_structure import TwoStructureSignificant
from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


def make_combined(k=10, alpha=1.0, beta=1.0) -> TwoStructureSignificant:
    return TwoStructureSignificant(
        freq_sketch=CountMinSketch(width=4096, rows=3, seed=1),
        pers_sketch=CountMinSketch(width=4096, rows=3, seed=2),
        bloom=BloomFilter(num_bits=1 << 15, num_hashes=3),
        k=k,
        alpha=alpha,
        beta=beta,
    )


class TestSemantics:
    def test_combines_frequency_and_persistency(self):
        combined = make_combined(alpha=2.0, beta=5.0)
        stream = make_stream([1, 1, 1, 1, 1, 1], num_periods=3)
        stream.run(combined)
        # f = 6, p = 3 with ample memory → 2·6 + 5·3 = 27.
        assert combined.query(1) == 27.0

    def test_exact_with_ample_memory(self):
        events = [1, 2, 1, 3, 2, 2, 1, 1, 3, 9, 9, 9]
        stream = make_stream(events, num_periods=3)
        truth = GroundTruth(stream)
        combined = make_combined(alpha=1.0, beta=1.0)
        stream.run(combined)
        for item in truth.items():
            assert combined.query(item) == truth.significance(item, 1.0, 1.0)

    def test_heap_tracks_topk(self):
        combined = make_combined(k=2)
        stream = make_stream([1] * 10 + [2] * 6 + [3] * 2, num_periods=2)
        stream.run(combined)
        reported = {r.item for r in combined.top_k(2)}
        assert reported == {1, 2}

    def test_report_fields(self):
        combined = make_combined(alpha=1.0, beta=1.0)
        stream = make_stream([4, 4, 4, 4], num_periods=2)
        stream.run(combined)
        report = combined.top_k(1)[0]
        assert report.item == 4
        assert report.frequency == 4.0
        assert report.persistency == 2.0
        assert report.significance == 6.0


class TestSizing:
    def test_from_memory_builds_all_parts(self):
        combined = TwoStructureSignificant.from_memory(
            CUSketch, MemoryBudget(kb(16)), k=20, alpha=1.0, beta=1.0
        )
        assert combined.heap.capacity == 20
        assert combined.freq_sketch.width >= combined.pers_sketch.width
        assert combined.bloom.num_bits == kb(16) // 4 * 8
