"""ClockPointer: the exactly-once-per-period sweep invariant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ClockPointer


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockPointer(0, 10)
        with pytest.raises(ValueError):
            ClockPointer(10, 0)


class TestCountBased:
    def test_full_period_scans_every_cell_once(self):
        clock = ClockPointer(num_cells=24, items_per_period=10)
        scanned = []
        for _ in range(10):
            scanned.extend(clock.on_arrival())
        assert sorted(scanned) == list(range(24))

    def test_multiple_periods(self):
        clock = ClockPointer(num_cells=7, items_per_period=3)
        for period in range(5):
            scanned = []
            for _ in range(3):
                scanned.extend(clock.on_arrival())
            scanned.extend(clock.end_period())
            assert sorted(scanned) == list(range(7)), f"period {period}"

    def test_more_cells_than_items(self):
        clock = ClockPointer(num_cells=100, items_per_period=3)
        scanned = []
        for _ in range(3):
            scanned.extend(clock.on_arrival())
        assert len(scanned) == 100  # ceil behaviour via accumulator

    def test_fewer_items_than_period_completes_on_end(self):
        clock = ClockPointer(num_cells=10, items_per_period=10)
        scanned = []
        for _ in range(4):  # short period
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(10))

    def test_excess_arrivals_never_rescan(self):
        """A long period (remainder absorption) must not scan cells twice."""
        clock = ClockPointer(num_cells=10, items_per_period=5)
        scanned = []
        for _ in range(9):  # 4 extra arrivals
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(10))

    def test_hand_position_continues_across_periods(self):
        clock = ClockPointer(num_cells=6, items_per_period=2)
        first = []
        for _ in range(2):
            first.extend(clock.on_arrival())
        clock.end_period()
        second = clock.on_arrival()
        assert second[0] == 0  # wrapped exactly to the start

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 60))
    @settings(max_examples=80, deadline=None)
    def test_exactly_once_property(self, m, n, arrivals):
        """For any table size, period length and arrival count, a period
        (arrivals + end_period) scans each cell exactly once."""
        clock = ClockPointer(num_cells=m, items_per_period=n)
        scanned = []
        for _ in range(arrivals):
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(m))


class TestTimeBased:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ClockPointer(10, 1).on_elapsed(-0.1)

    def test_full_period_fraction_scans_all(self):
        clock = ClockPointer(num_cells=20, items_per_period=1)
        scanned = []
        for _ in range(10):
            scanned.extend(clock.on_elapsed(0.1))
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(20))

    def test_irregular_arrivals(self):
        clock = ClockPointer(num_cells=13, items_per_period=1)
        scanned = []
        for fraction in (0.5, 0.01, 0.02, 0.47):
            scanned.extend(clock.on_elapsed(fraction))
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(13))

    def test_overshoot_capped(self):
        clock = ClockPointer(num_cells=8, items_per_period=1)
        scanned = clock.on_elapsed(3.5)  # pathological burst of lateness
        assert sorted(scanned) == list(range(8))
        assert clock.end_period() == []


class TestTickArithmetic:
    """The integer-tick accumulator: exact, split-invariant advancement.

    Regression for the float accumulator this replaced, which summed
    ``Δt/t · m`` in binary floating point: many tiny deltas accumulated
    rounding error, so a period's worth of arrivals could scan ``m − 1``
    slots (the lost slot's persistency silently stalled).  Integer tick
    deltas telescope, so these tests pin exactness for the adversarial
    split counts that demonstrably drifted the old code (e.g. ``m=64``
    split 977 ways lost a slot).
    """

    @pytest.mark.parametrize(
        "m, splits", [(8, 3), (13, 97), (64, 977), (128, 49), (4096, 97)]
    )
    def test_equal_splits_of_one_period_scan_every_cell(self, m, splits):
        clock = ClockPointer(num_cells=m, items_per_period=1)
        prev = 0
        scanned = []
        for i in range(1, splits + 1):
            # Quantise the *absolute* time i/splits to ticks, feed deltas
            # — exactly what LTC.insert_timed does.
            cur = round(i / splits * ClockPointer.TICKS_PER_PERIOD)
            scanned.extend(clock.on_elapsed_ticks(cur - prev))
            prev = cur
        assert sorted(scanned) == list(range(m))
        assert clock._tacc == 0
        assert clock.end_period() == []

    def test_rejects_negative_ticks(self):
        with pytest.raises(ValueError):
            ClockPointer(10, 1).on_elapsed_ticks(-1)

    @given(
        m=st.integers(1, 100),
        deltas=st.lists(st.integers(0, 1 << 34), min_size=1, max_size=50),
        cut=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_tick_advancement_telescopes(self, m, deltas, cut):
        """Any split of an elapsed interval lands the pointer in the
        identical state: hand, residue, and scanned count all match."""
        merged = ClockPointer(num_cells=m, items_per_period=1)
        split = ClockPointer(num_cells=m, items_per_period=1)
        merged.on_elapsed_ticks(sum(deltas))
        for delta in deltas:
            split.on_elapsed_ticks(delta)
        assert split.hand == merged.hand
        assert split._tacc == merged._tacc
        assert split.scanned_in_period == merged.scanned_in_period

    def test_fraction_wrapper_quantises_exactly(self):
        """on_elapsed(f) == on_elapsed_ticks(floor(f · T)) for any float,
        via exact integer arithmetic on the float's rational value."""
        for fraction in (0.1, 1 / 3, 0.875, 1e-12, 2.5):
            via_float = ClockPointer(num_cells=16, items_per_period=1)
            via_ticks = ClockPointer(num_cells=16, items_per_period=1)
            via_float.on_elapsed(fraction)
            numerator, denominator = fraction.as_integer_ratio()
            via_ticks.on_elapsed_ticks(
                numerator * ClockPointer.TICKS_PER_PERIOD // denominator
            )
            assert via_float.hand == via_ticks.hand
            assert via_float._tacc == via_ticks._tacc
