"""ClockPointer: the exactly-once-per-period sweep invariant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ClockPointer


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockPointer(0, 10)
        with pytest.raises(ValueError):
            ClockPointer(10, 0)


class TestCountBased:
    def test_full_period_scans_every_cell_once(self):
        clock = ClockPointer(num_cells=24, items_per_period=10)
        scanned = []
        for _ in range(10):
            scanned.extend(clock.on_arrival())
        assert sorted(scanned) == list(range(24))

    def test_multiple_periods(self):
        clock = ClockPointer(num_cells=7, items_per_period=3)
        for period in range(5):
            scanned = []
            for _ in range(3):
                scanned.extend(clock.on_arrival())
            scanned.extend(clock.end_period())
            assert sorted(scanned) == list(range(7)), f"period {period}"

    def test_more_cells_than_items(self):
        clock = ClockPointer(num_cells=100, items_per_period=3)
        scanned = []
        for _ in range(3):
            scanned.extend(clock.on_arrival())
        assert len(scanned) == 100  # ceil behaviour via accumulator

    def test_fewer_items_than_period_completes_on_end(self):
        clock = ClockPointer(num_cells=10, items_per_period=10)
        scanned = []
        for _ in range(4):  # short period
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(10))

    def test_excess_arrivals_never_rescan(self):
        """A long period (remainder absorption) must not scan cells twice."""
        clock = ClockPointer(num_cells=10, items_per_period=5)
        scanned = []
        for _ in range(9):  # 4 extra arrivals
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(10))

    def test_hand_position_continues_across_periods(self):
        clock = ClockPointer(num_cells=6, items_per_period=2)
        first = []
        for _ in range(2):
            first.extend(clock.on_arrival())
        clock.end_period()
        second = clock.on_arrival()
        assert second[0] == 0  # wrapped exactly to the start

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 60))
    @settings(max_examples=80, deadline=None)
    def test_exactly_once_property(self, m, n, arrivals):
        """For any table size, period length and arrival count, a period
        (arrivals + end_period) scans each cell exactly once."""
        clock = ClockPointer(num_cells=m, items_per_period=n)
        scanned = []
        for _ in range(arrivals):
            scanned.extend(clock.on_arrival())
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(m))


class TestTimeBased:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ClockPointer(10, 1).on_elapsed(-0.1)

    def test_full_period_fraction_scans_all(self):
        clock = ClockPointer(num_cells=20, items_per_period=1)
        scanned = []
        for _ in range(10):
            scanned.extend(clock.on_elapsed(0.1))
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(20))

    def test_irregular_arrivals(self):
        clock = ClockPointer(num_cells=13, items_per_period=1)
        scanned = []
        for fraction in (0.5, 0.01, 0.02, 0.47):
            scanned.extend(clock.on_elapsed(fraction))
        scanned.extend(clock.end_period())
        assert sorted(scanned) == list(range(13))

    def test_overshoot_capped(self):
        clock = ClockPointer(num_cells=8, items_per_period=1)
        scanned = clock.on_elapsed(3.5)  # pathological burst of lateness
        assert sorted(scanned) == list(range(8))
        assert clock.end_period() == []
