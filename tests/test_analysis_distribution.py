"""Long-tail diagnostics (§III-D tooling)."""

from __future__ import annotations

import pytest

from repro.analysis.distribution import (
    fit_zipf,
    is_long_tailed,
    sample_frequencies,
    tail_ratio,
)
from repro.streams.synthetic import zipf_frequencies


class TestFitZipf:
    def test_recovers_exact_power_law(self):
        freqs = [1000.0 / (rank**1.2) for rank in range(1, 200)]
        fit = fit_zipf(freqs)
        assert fit.skew == pytest.approx(1.2, abs=0.01)
        assert fit.r_squared > 0.999

    def test_uniform_gives_zero_skew(self):
        fit = fit_zipf([10.0] * 50)
        assert fit.skew == pytest.approx(0.0, abs=1e-9)

    def test_predicted_matches_head(self):
        freqs = [500.0 / rank for rank in range(1, 100)]
        fit = fit_zipf(freqs)
        assert fit.predicted(1) == pytest.approx(500.0, rel=0.05)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_zipf([5.0])

    def test_ignores_zero_frequencies(self):
        freqs = [90.0, 45.0, 30.0, 0.0, 0.0]  # exact 90/rank at ranks 1-3
        fit = fit_zipf(freqs)
        assert fit.skew == pytest.approx(1.0, abs=0.01)


class TestTailRatio:
    def test_uniform(self):
        assert tail_ratio([1.0] * 100, 0.01) == pytest.approx(0.01)

    def test_skewed(self):
        freqs = sorted(zipf_frequencies(100_000, 1_000, 1.2), reverse=True)
        assert tail_ratio(freqs, 0.01) > 0.2

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            tail_ratio([1.0], 0.0)

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            tail_ratio([0.0, 0.0])


class TestIsLongTailed:
    def test_zipf_accepted(self):
        freqs = zipf_frequencies(50_000, 2_000, 1.0)
        report = is_long_tailed(freqs)
        assert report.long_tailed
        assert "long-tailed" in str(report)

    def test_uniform_rejected(self):
        report = is_long_tailed([10] * 1_000)
        assert not report.long_tailed
        assert "NOT" in str(report)

    def test_order_independent(self):
        freqs = zipf_frequencies(10_000, 500, 1.0)
        shuffled = list(reversed(freqs))
        assert is_long_tailed(freqs).long_tailed == is_long_tailed(
            shuffled
        ).long_tailed


class TestSampleFrequencies:
    def test_small_input_counted_exactly(self):
        events = [1, 1, 1, 2, 2, 3]
        assert sample_frequencies(events, sample_size=100) == [3, 2, 1]

    def test_sampling_preserves_shape(self):
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(30_000, 3_000, 1.2, num_periods=10, seed=3)
        sampled = sample_frequencies(stream.events, sample_size=5_000, seed=4)
        assert is_long_tailed(sampled).long_tailed

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            sample_frequencies([1], sample_size=0)

    def test_deterministic(self):
        events = list(range(100)) * 3
        assert sample_frequencies(events, 50, seed=9) == sample_frequencies(
            events, 50, seed=9
        )
