"""End-to-end integration: the paper's headline claims on scaled-down
workloads.  These are the 'shape' assertions the benchmarks print in full."""

from __future__ import annotations

import pytest

from repro.experiments.configs import (
    default_algorithms_frequent,
    default_algorithms_persistent,
    default_algorithms_significant,
)
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.streams.datasets import network_like
from repro.streams.ground_truth import GroundTruth


@pytest.fixture(scope="module")
def workload():
    stream = network_like(num_events=30_000, num_distinct=8_000, num_periods=30)
    return stream, GroundTruth(stream)


class TestFrequentItems:
    """Fig. 9/10 shape: LTC has the best precision and ARE."""

    def test_ltc_wins_at_tight_memory(self, workload):
        stream, truth = workload
        budget = MemoryBudget(kb(5))
        results = {
            r.name: r
            for r in run_and_evaluate(
                default_algorithms_frequent(budget, stream, 100),
                stream,
                100,
                1.0,
                0.0,
                truth,
            )
        }
        ltc = results.pop("LTC")
        assert all(ltc.precision >= r.precision for r in results.values())
        assert all(ltc.are <= r.are for r in results.values())
        assert ltc.precision >= 0.8

    def test_ltc_near_perfect_with_ample_memory(self, workload):
        stream, truth = workload
        budget = MemoryBudget(kb(50))
        results = run_and_evaluate(
            {"LTC": default_algorithms_frequent(budget, stream, 100)["LTC"]},
            stream,
            100,
            1.0,
            0.0,
            truth,
        )
        assert results[0].precision >= 0.99
        assert results[0].are <= 0.01


class TestPersistentItems:
    """Fig. 12/13 shape: LTC beats PIE and the sketch adaptations."""

    def test_ltc_wins(self, workload):
        stream, truth = workload
        budget = MemoryBudget(kb(25))
        results = {
            r.name: r
            for r in run_and_evaluate(
                default_algorithms_persistent(budget, stream, 100),
                stream,
                100,
                0.0,
                1.0,
                truth,
            )
        }
        ltc = results.pop("LTC")
        assert all(ltc.precision >= r.precision for r in results.values())
        assert ltc.are <= min(r.are for r in results.values()) + 1e-9


class TestSignificantItems:
    """Fig. 14/15 shape: LTC beats the combined two-structure baseline for
    every (α, β) pairing the paper tests."""

    @pytest.mark.parametrize("alpha,beta", [(1.0, 10.0), (1.0, 1.0), (10.0, 1.0)])
    def test_ltc_wins(self, workload, alpha, beta):
        stream, truth = workload
        budget = MemoryBudget(kb(10))
        results = {
            r.name: r
            for r in run_and_evaluate(
                default_algorithms_significant(budget, stream, 100, alpha, beta),
                stream,
                100,
                alpha,
                beta,
                truth,
            )
        }
        ltc = results.pop("LTC")
        assert all(ltc.precision >= r.precision for r in results.values())
        assert all(ltc.are <= r.are for r in results.values())
        assert ltc.precision >= 0.85


class TestMemoryScaling:
    def test_ltc_precision_monotone_in_memory(self, workload):
        """More memory never hurts (up to small noise)."""
        stream, truth = workload
        exact = truth.top_k_items(100, 1.0, 1.0)

        def precision_at(kb_budget: float) -> float:
            from repro.experiments.configs import ltc_factory
            from repro.metrics.accuracy import precision as prec

            ltc = ltc_factory(
                MemoryBudget(kb(kb_budget)), stream, alpha=1.0, beta=1.0
            )()
            stream.run(ltc)
            return prec((r.item for r in ltc.top_k(100)), exact)

        p_small_mem = precision_at(4)
        p_large_mem = precision_at(40)
        assert p_large_mem >= p_small_mem
        assert p_large_mem >= 0.95
