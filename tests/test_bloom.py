"""Bloom filter: no false negatives, clearing, sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget, kb


class TestGuarantees:
    def test_no_false_negatives(self, rng):
        bloom = BloomFilter(num_bits=4096, num_hashes=3)
        keys = [rng.getrandbits(32) for _ in range(300)]
        for key in keys:
            bloom.insert(key)
        assert all(key in bloom for key in keys)

    @given(st.sets(st.integers(0, 2**32 - 1), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter(num_bits=2048, num_hashes=3)
        for key in keys:
            bloom.insert(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_bounded(self, rng):
        bloom = BloomFilter(num_bits=8192, num_hashes=3)
        for key in range(500):
            bloom.insert(key)
        probes = [rng.getrandbits(40) + 2**33 for _ in range(2_000)]
        fp = sum(1 for p in probes if p in bloom)
        # ~500 keys in 8192 bits: theoretical fpp well below 2%.
        assert fp / len(probes) < 0.05

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(num_bits=128)
        assert 5 not in bloom


class TestBehaviour:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=8, num_hashes=0)

    def test_num_hashes_from_expected_items(self):
        bloom = BloomFilter(num_bits=1000, expected_items=100)
        assert bloom.num_hashes == round(0.6931 * 10)

    def test_clear(self):
        bloom = BloomFilter(num_bits=256)
        bloom.insert(1)
        bloom.clear()
        assert 1 not in bloom
        assert bloom.bits_set == 0

    def test_insert_if_absent_semantics(self):
        bloom = BloomFilter(num_bits=1024)
        assert bloom.insert_if_absent(9) is True
        assert bloom.insert_if_absent(9) is False
        assert 9 in bloom

    def test_insert_if_absent_per_period_dedup(self):
        """The use-case: count period-first appearances."""
        bloom = BloomFilter(num_bits=4096)
        firsts = 0
        for period in range(5):
            for item in [1, 2, 1, 3, 2, 1]:
                if bloom.insert_if_absent(item):
                    firsts += 1
            bloom.clear()
        assert firsts == 15  # 3 distinct × 5 periods

    def test_estimated_fpp_grows_with_load(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3)
        assert bloom.estimated_fpp() == 0.0
        for key in range(50):
            bloom.insert(key)
        light = bloom.estimated_fpp()
        for key in range(50, 200):
            bloom.insert(key)
        assert bloom.estimated_fpp() > light

    def test_from_memory(self):
        bloom = BloomFilter.from_memory(MemoryBudget(kb(1)))
        assert bloom.num_bits == 8192
