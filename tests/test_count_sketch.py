"""Count sketch: unbiased two-sided estimation."""

from __future__ import annotations

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.count_sketch import CountSketch


class TestBehaviour:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CountSketch(width=0)

    def test_exact_with_huge_width(self):
        sketch = CountSketch(width=1 << 16, rows=3)
        for _ in range(9):
            sketch.update(1)
        assert sketch.query(1) == 9

    def test_update_and_query(self):
        sketch = CountSketch(width=1 << 12, rows=3)
        assert sketch.update_and_query(3) in (0, 1)  # collisions possible
        sketch.update(3, delta=10)
        assert sketch.query(3) >= 10 - 2  # small two-sided noise allowed

    def test_can_underestimate(self, small_zipf, small_zipf_truth):
        """Unlike CM/CU the Count sketch is two-sided: on a crowded sketch
        some estimate must fall below the true count."""
        sketch = CountSketch(width=64, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        under = sum(
            1
            for item in small_zipf_truth.items()
            if sketch.query(item) < small_zipf_truth.frequency(item)
        )
        assert under > 0

    def test_roughly_unbiased(self, small_zipf, small_zipf_truth):
        """Signed errors should largely cancel across items."""
        sketch = CountSketch(width=256, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        errors = [
            sketch.query(item) - small_zipf_truth.frequency(item)
            for item in small_zipf_truth.items()
        ]
        mean_error = sum(errors) / len(errors)
        mean_abs = sum(abs(e) for e in errors) / len(errors)
        assert abs(mean_error) < max(1.0, 0.5 * mean_abs)

    def test_total_counters(self):
        assert CountSketch(width=10, rows=3).total_counters == 30

    def test_from_memory(self):
        sketch = CountSketch.from_memory(MemoryBudget(kb(12)), rows=3)
        assert sketch.width == (kb(12) // 4) // 3

    def test_heavy_hitter_accurate(self, small_zipf, small_zipf_truth):
        sketch = CountSketch(width=512, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        top_item, top_sig = small_zipf_truth.top_k(1, 1.0, 0.0)[0]
        assert abs(sketch.query(top_item) - top_sig) <= 0.2 * top_sig
