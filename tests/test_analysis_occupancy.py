"""Bucket-occupancy model vs simulation."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.occupancy import (
    bucket_overflow_probability,
    expected_overflowing_buckets,
    overflow_curve,
    poisson_tail,
)


class TestPoissonTail:
    def test_zero_mean(self):
        assert poisson_tail(0.0, 0) == 0.0
        assert poisson_tail(0.0, 5) == 0.0

    def test_negative_threshold(self):
        assert poisson_tail(1.0, -1) == 1.0

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            poisson_tail(-1.0, 2)

    def test_known_value(self):
        # P[X > 0] for mean 1 = 1 - e^-1.
        assert poisson_tail(1.0, 0) == pytest.approx(1 - math.exp(-1))

    def test_monotone_in_threshold(self):
        values = [poisson_tail(4.0, t) for t in range(10)]
        assert values == sorted(values, reverse=True)


class TestOverflowModel:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            bucket_overflow_probability(10, 0, 1)
        with pytest.raises(ValueError):
            bucket_overflow_probability(-1, 1, 1)

    def test_matches_simulation(self):
        """The Poisson model tracks the empirical overflow rate."""
        rng = random.Random(6)
        num_items, w, d = 4_000, 500, 8
        trials = 40
        overflow_counts = 0
        for _ in range(trials):
            loads = [0] * w
            for _ in range(num_items):
                loads[rng.randrange(w)] += 1
            overflow_counts += sum(1 for load in loads if load > d)
        empirical = overflow_counts / (trials * w)
        model = bucket_overflow_probability(num_items, w, d)
        assert model == pytest.approx(empirical, abs=0.02)

    def test_expected_buckets(self):
        assert expected_overflowing_buckets(
            4_000, 500, 8
        ) == 500 * bucket_overflow_probability(4_000, 500, 8)

    def test_underloaded_wider_buckets_balance_better(self):
        """With fewer contenders than cells, overflow probability falls
        with d — the balancing argument behind the paper's d = 8 choice
        (the top-k contenders are far fewer than the cells)."""
        curve = overflow_curve(
            num_items=1_000, total_cells=2_048, widths=(1, 2, 4, 8, 16)
        )
        probs = [p for _, p in curve]
        assert probs == sorted(probs, reverse=True)
        by_d = dict(curve)
        # At d=8 the marginal gain over d=4 is already small (plateau).
        assert by_d[4] - by_d[8] < by_d[1] - by_d[4]

    def test_overloaded_regime_reverses(self):
        """With more contenders than cells every wide bucket overflows —
        in overload LTC's protection is Significance Decrementing, not
        bucket slack (the model makes the regime boundary explicit)."""
        curve = overflow_curve(
            num_items=5_000, total_cells=2_048, widths=(1, 4, 16)
        )
        probs = [p for _, p in curve]
        assert probs == sorted(probs)
        assert probs[-1] > 0.99
