"""Zipf frequency apportionment and stream generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.synthetic import zipf_frequencies, zipf_stream


class TestZipfFrequencies:
    def test_total_exact(self):
        freqs = zipf_frequencies(10_000, 500, 1.0)
        assert sum(freqs) == 10_000

    def test_non_increasing(self):
        freqs = zipf_frequencies(10_000, 500, 1.0)
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_all_positive(self):
        assert all(f > 0 for f in zipf_frequencies(1_000, 2_000, 1.2))

    def test_skew_concentrates_head(self):
        light = zipf_frequencies(10_000, 500, 0.5)
        heavy = zipf_frequencies(10_000, 500, 1.5)
        assert heavy[0] > light[0]

    def test_zero_skew_near_uniform(self):
        freqs = zipf_frequencies(1_000, 100, 0.0)
        assert max(freqs) - min(freqs) <= 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 10, 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 0, 1.0)

    @given(
        st.integers(1, 5_000),
        st.integers(1, 500),
        st.floats(0.0, 2.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_total_exact_property(self, n, m, skew):
        assert sum(zipf_frequencies(n, m, skew)) == n


class TestZipfStream:
    def test_deterministic_with_seed(self):
        a = zipf_stream(2_000, 300, 1.0, num_periods=5, seed=3)
        b = zipf_stream(2_000, 300, 1.0, num_periods=5, seed=3)
        assert a.events == b.events

    def test_different_seed_differs(self):
        a = zipf_stream(2_000, 300, 1.0, num_periods=5, seed=3)
        b = zipf_stream(2_000, 300, 1.0, num_periods=5, seed=4)
        assert a.events != b.events

    def test_event_count(self):
        assert len(zipf_stream(2_000, 300, 1.0, num_periods=5, seed=1)) == 2_000

    def test_frequencies_match_apportionment(self):
        stream = zipf_stream(2_000, 300, 1.0, num_periods=5, seed=1)
        from collections import Counter

        counts = sorted(Counter(stream.events).values(), reverse=True)
        assert counts == zipf_frequencies(2_000, 300, 1.0)

    def test_ids_are_32_bit(self):
        stream = zipf_stream(500, 100, 1.0, num_periods=2, seed=9)
        assert all(0 <= e < 2**32 for e in stream.events)

    def test_default_name(self):
        assert zipf_stream(100, 10, 1.5, num_periods=2).name == "zipf-g1.5"
