"""Raptor code: precode structure and GF(2) elimination decoding."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.raptor import RaptorCode, _solve_gf2


class TestGF2Solver:
    def test_identity_system(self):
        rows = [[0b001, 5], [0b010, 7], [0b100, 9]]
        assert _solve_gf2(rows, 3) == [5, 7, 9]

    def test_xor_system(self):
        # x0^x1 = 6, x1 = 2, x0^x1^x2 = 7  →  x0=4, x1=2, x2=1
        rows = [[0b011, 6], [0b010, 2], [0b111, 7]]
        assert _solve_gf2(rows, 3) == [4, 2, 1]

    def test_underdetermined(self):
        assert _solve_gf2([[0b011, 6]], 2) is None

    def test_inconsistent(self):
        rows = [[0b01, 1], [0b01, 2]]
        assert _solve_gf2(rows, 2) is None

    def test_redundant_consistent_rows_ok(self):
        rows = [[0b01, 1], [0b10, 2], [0b11, 3]]
        assert _solve_gf2(rows, 2) == [1, 2]


class TestRaptorStructure:
    def test_rejects_negative_parity(self):
        with pytest.raises(ValueError):
            RaptorCode(num_parity=-1)

    def test_intermediates_layout(self):
        code = RaptorCode(num_source=2, num_parity=1, chunk_bits=16)
        inter = code.intermediates(0xABCD1234)
        assert len(inter) == 3
        assert inter[0] == 0x1234
        assert inter[1] == 0xABCD
        assert inter[2] == inter[0] ^ inter[1]  # weight-2 parity over 2 chunks

    def test_parity_mask_weight(self):
        code = RaptorCode(num_source=4, num_parity=3, chunk_bits=8)
        for mask in code._parity_masks:
            assert bin(mask).count("1") >= 2


class TestRaptorDecoding:
    def test_roundtrip_with_three_symbols(self):
        code = RaptorCode()
        rng = random.Random(11)
        ok = 0
        for _ in range(300):
            value = rng.getrandbits(32)
            idxs = rng.sample(range(5000), 3)
            if code.decode([(i, code.encode(value, i)) for i in idxs]) == value:
                ok += 1
        assert ok / 300 > 0.6  # random-linear fountain at 3 symbols

    def test_roundtrip_with_six_symbols_near_certain(self):
        code = RaptorCode()
        rng = random.Random(12)
        ok = 0
        for _ in range(200):
            value = rng.getrandbits(32)
            idxs = rng.sample(range(5000), 6)
            if code.decode([(i, code.encode(value, i)) for i in idxs]) == value:
                ok += 1
        assert ok / 200 > 0.95

    def test_never_misdecodes_clean_symbols(self):
        """Decoding either returns the true value or None — never a wrong
        value — when all symbols come from one identifier."""
        code = RaptorCode()
        rng = random.Random(13)
        for _ in range(300):
            value = rng.getrandbits(32)
            idxs = rng.sample(range(5000), rng.randint(1, 5))
            decoded = code.decode([(i, code.encode(value, i)) for i in idxs])
            assert decoded is None or decoded == value

    def test_empty_symbols(self):
        assert RaptorCode().decode([]) is None

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_encode_deterministic(self, value, idx):
        code = RaptorCode(seed=42)
        assert code.encode(value, idx) == code.encode(value, idx)


class TestPeelingDecoder:
    def test_peelable_agrees_with_elimination(self):
        """Whenever peeling succeeds, elimination returns the same id."""
        code = RaptorCode()
        rng = random.Random(21)
        successes = 0
        for _ in range(500):
            value = rng.getrandbits(32)
            idxs = rng.sample(range(50_000), rng.randint(2, 5))
            symbols = [(i, code.encode(value, i)) for i in idxs]
            peeled = code.decode_peeling(symbols)
            if peeled is not None:
                successes += 1
                assert peeled == code.decode(symbols) == value
        assert successes > 50  # peeling succeeds often enough to matter

    def test_elimination_dominates_peeling(self):
        """Everything peelable is solvable by elimination (never the
        reverse failing)."""
        code = RaptorCode()
        rng = random.Random(22)
        for _ in range(500):
            value = rng.getrandbits(32)
            idxs = rng.sample(range(50_000), 3)
            symbols = [(i, code.encode(value, i)) for i in idxs]
            if code.decode_peeling(symbols) is not None:
                assert code.decode(symbols) is not None

    def test_precode_phase_rescues_stuck_peel(self):
        """The precode's mechanism, demonstrated constructively: symbols
        resolving x0 and the parity chunk x2 leave x1 unreachable by LT
        peeling alone — the parity constraint x0⊕x1⊕x2 = 0 is what
        recovers it.  (Statistically the precode does not pay at this
        tiny block size — see test_codes_statistics — but the rescue
        mechanism itself must work.)"""
        code = RaptorCode(num_source=2, num_parity=1, chunk_bits=16, seed=4)

        def first_index_with_neighbors(wanted):
            for idx in range(200_000):
                if code._lt.neighbors(idx) == wanted:
                    return idx
            raise AssertionError(f"no symbol index with neighbours {wanted}")

        idx_x0 = first_index_with_neighbors([0])
        idx_x2 = first_index_with_neighbors([2])
        value = 0xFEEDBEEF
        symbols = [
            (idx_x0, code.encode(value, idx_x0)),
            (idx_x2, code.encode(value, idx_x2)),
        ]
        # x1 appears in no received symbol alone; only the parity phase
        # can resolve it.
        assert code.decode_peeling(symbols) == value

    def test_peeling_empty(self):
        assert RaptorCode().decode_peeling([]) is None
