"""ServingIndex mechanics: laziness, invalidation, compaction, lifecycle.

The byte-equality of served answers is pinned by
``tests/test_serving_differential.py``; here we test the index's own
machinery — that it repairs lazily (no work on the ingest path), dedupes
dirty slots, survives item relocation between repairs, bounds its heap,
and detaches cleanly.
"""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.core.kernels import KERNELS, build_ltc
from repro.serve.index import ServingIndex


def _cfg(**kw):
    base = dict(num_buckets=4, bucket_width=2, items_per_period=16)
    base.update(kw)
    return LTCConfig(**base)


class TestLaziness:
    def test_ingest_does_not_repair(self):
        ltc = build_ltc(_cfg())
        idx = ServingIndex(ltc)
        ltc.insert_many(list(range(100)))
        assert idx.repairs == 0
        idx.top_k(3)
        assert idx.repairs == 1

    def test_duplicate_touches_queue_once(self):
        ltc = build_ltc(_cfg())
        idx = ServingIndex(ltc)
        idx.top_k(1)  # drain the adoption pass
        before = len(idx._pending)
        for _ in range(50):
            ltc.insert(7)
        # one slot mutated 50 times queues exactly one repair entry
        assert len(idx._pending) - before == 1

    def test_query_without_mutations_skips_repair(self):
        ltc = build_ltc(_cfg())
        idx = ServingIndex(ltc)
        idx.top_k(1)
        idx.top_k(1)
        idx.query(3)
        assert idx.repairs == 1


class TestInvalidation:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_eviction_drops_departed_item(self, kernel):
        # 1 bucket x 1 cell: every new item evicts the incumbent.
        ltc = build_ltc(
            _cfg(num_buckets=1, bucket_width=1, kernel=kernel,
                 replacement_policy="space-saving")
        )
        idx = ServingIndex(ltc)
        ltc.insert(1)
        assert idx.query(1)[0] is True
        ltc.insert(2)
        assert idx.query(1)[0] is False
        assert idx.query(2)[0] is True
        assert idx.tracked() == 1

    def test_relocated_item_not_dropped_by_stale_diff(self):
        # An item that leaves slot A and reappears in slot A again (or
        # elsewhere) between two repairs must stay resolvable: the diff
        # only deletes a dict entry still pointing at the touched slot.
        ltc = build_ltc(_cfg(num_buckets=1, bucket_width=2,
                             replacement_policy="space-saving"))
        idx = ServingIndex(ltc)
        ltc.insert_many([1, 2])      # slots 0, 1 occupied
        assert idx.tracked() == 2
        # evict 1 (smallest), then evict 2's bucket-mate again with 1 back
        ltc.insert(3)                # replaces one incumbent
        ltc.insert(1)
        idx.top_k(2)
        for item in (1,):
            assert idx.query(item)[0] == (item in ltc)

    def test_clear_resets_index(self):
        ltc = build_ltc(_cfg())
        idx = ServingIndex(ltc)
        ltc.insert_many(list(range(50)))
        assert idx.tracked() > 0
        ltc.clear()
        assert idx.tracked() == 0
        assert idx.top_k(5) == []
        assert idx.query(1) == (False, 0.0, 0, 0)
        # the index keeps working after the reset
        ltc.insert(9)
        assert idx.query(9)[0] is True


class TestHeapBounds:
    def test_compaction_bounds_heap(self):
        ltc = build_ltc(_cfg(num_buckets=1, bucket_width=1))
        idx = ServingIndex(ltc)
        # Hammer one cell with alternating evictions; every repair pushes
        # a fresh entry, so without compaction the heap grows forever.
        for i in range(3000):
            ltc.insert(i)
            if i % 2 == 0:
                idx.top_k(1)
        assert idx.heap_size() <= max(64, 4 * ltc.total_cells) + 1

    def test_stale_entries_skipped_on_pop(self):
        ltc = build_ltc(_cfg(num_buckets=1, bucket_width=1))
        idx = ServingIndex(ltc)
        for i in range(10):
            ltc.insert(i)
            idx.top_k(1)  # repair each step -> stale entries accumulate
        reports = idx.top_k(5)
        assert len(reports) == 1  # one cell => one live item


class TestLifecycle:
    def test_close_detaches(self):
        ltc = build_ltc(_cfg())
        idx = ServingIndex(ltc)
        idx.top_k(1)  # drain the adoption pass
        idx.close()
        ltc.insert_many(list(range(32)))
        assert idx._pending == []  # no notifications after detach

    def test_adopts_existing_state(self):
        ltc = build_ltc(_cfg())
        ltc.insert_many(list(range(20)))
        idx = ServingIndex(ltc)  # attached mid-life
        assert idx.tracked() == len(ltc)
