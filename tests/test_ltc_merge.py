"""Merging LTC summaries from partitioned streams."""

from __future__ import annotations

import random

import pytest

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


def fresh_ltc(w=4, d=4, alpha=1.0, beta=1.0, n=100, seed=0x17C) -> LTC:
    return LTC(
        LTCConfig(
            num_buckets=w,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=n,
            seed=seed,
        )
    )


def run(ltc: LTC, events, num_periods):
    stream = make_stream(events, num_periods=num_periods)
    stream.run(ltc)
    return ltc


class TestValidation:
    def test_empty_input(self):
        with pytest.raises(ValueError):
            merge([])

    def test_incompatible_configs(self):
        with pytest.raises(ValueError, match="num_buckets"):
            merge([fresh_ltc(w=4), fresh_ltc(w=8)])

    def test_incompatible_seed(self):
        with pytest.raises(ValueError, match="seed"):
            merge([fresh_ltc(seed=1), fresh_ltc(seed=2)])

    def make(self, **overrides) -> LTC:
        cfg = dict(
            num_buckets=4, bucket_width=4, alpha=1.0, beta=1.0,
            items_per_period=100,
        )
        cfg.update(overrides)
        return LTC(LTCConfig(**cfg))

    def test_incompatible_deviation_eliminator(self):
        """Flag semantics (one vs two flag bits) must line up."""
        with pytest.raises(ValueError, match="deviation_eliminator"):
            merge(
                [
                    self.make(deviation_eliminator=True),
                    self.make(deviation_eliminator=False),
                ]
            )

    def test_incompatible_replacement_policy(self):
        """Space-saving cells overestimate; mixing policies is rejected."""
        with pytest.raises(ValueError, match="replacement_policy"):
            merge(
                [
                    self.make(replacement_policy="longtail"),
                    self.make(replacement_policy="space-saving"),
                ]
            )

    def test_effective_policy_comparison(self):
        """policy=None with longtail_replacement=False equals an explicit
        'one' policy — and differs from the longtail default."""
        merge(
            [
                self.make(longtail_replacement=False),
                self.make(replacement_policy="one"),
            ]
        )
        with pytest.raises(ValueError, match="replacement_policy"):
            merge([self.make(), self.make(longtail_replacement=False)])

    def test_incompatible_items_per_period(self):
        with pytest.raises(ValueError, match="items_per_period"):
            merge([self.make(items_per_period=10), self.make(items_per_period=20)])

    def test_items_per_period_check_can_be_waived(self):
        """Coordinators with per-site CLOCK rates opt out explicitly."""
        merged = merge(
            [self.make(items_per_period=10), self.make(items_per_period=20)],
            check_period=False,
        )
        assert merged.config.items_per_period == 10


class TestItemShardedMerge:
    """Disjoint item partitions: per-item statistics merge exactly."""

    def test_exact_for_disjoint_partitions(self):
        rng = random.Random(4)
        events = [rng.randrange(40) for _ in range(800)]
        num_periods = 8
        # Shard by item parity — every item's arrivals land in one shard.
        shard_events = [
            [e for e in events if e % 2 == 0],
            [e for e in events if e % 2 == 1],
        ]
        shards = [
            run(fresh_ltc(w=8, d=8), se, num_periods) for se in shard_events
        ]
        merged = merge(shards, num_periods=num_periods)
        truth = GroundTruth(make_stream(events, num_periods=num_periods))
        # Ample capacity → every item survives with its shard-exact stats.
        for item in set(events):
            f, p = merged.estimate(item)
            shard = shards[item % 2]
            assert (f, p) == shard.estimate(item)
            # Shards had ample room, so shard estimates are exact within
            # their own period structure; persistency may differ from the
            # unpartitioned truth only via the shards' period boundaries.
            assert f == sum(1 for e in shard_events[item % 2] if e == item)

    def test_topk_from_merged_matches_union(self):
        events_a = [1] * 30 + [2] * 10 + list(range(100, 120))
        events_b = [3] * 25 + [4] * 5 + list(range(200, 220))
        a = run(fresh_ltc(w=8, d=8), events_a, 4)
        b = run(fresh_ltc(w=8, d=8), events_b, 4)
        merged = merge([a, b])
        top = [r.item for r in merged.top_k(3)]
        assert top[:2] == [1, 3]


class TestArbitrarySplitMerge:
    def test_frequencies_add(self):
        a = run(fresh_ltc(), [7] * 10, 2)
        b = run(fresh_ltc(), [7] * 15, 3)
        merged = merge([a, b])
        f, _ = merged.estimate(7)
        assert f == 25

    def test_persistency_clipped_to_num_periods(self):
        a = run(fresh_ltc(), [7, 7, 7, 7], 4)  # p = 4
        b = run(fresh_ltc(), [7, 7, 7, 7], 4)  # p = 4 (same periods)
        merged = merge([a, b], num_periods=4)
        _, p = merged.estimate(7)
        assert p == 4  # clipped; unclipped addition would claim 8

    def test_unclipped_when_periods_unknown(self):
        a = run(fresh_ltc(), [7, 7], 2)
        b = run(fresh_ltc(), [7, 7], 2)
        merged = merge([a, b])
        _, p = merged.estimate(7)
        assert p == 4


class TestBucketOverflow:
    def test_keeps_most_significant(self):
        # One bucket of width 2, three items with distinct weights spread
        # over two summaries.
        def one_bucket():
            return fresh_ltc(w=1, d=2)

        a = run(one_bucket(), [1] * 9 + [2] * 5, 2)
        b = run(one_bucket(), [3] * 7, 2)
        merged = merge([a, b])
        kept = {r.item for r in merged.top_k(2)}
        assert kept == {1, 3}  # item 2 (weakest) is cut

    def test_merge_of_unfinalized_inputs_folds_flags(self):
        a = fresh_ltc()
        for item in (5, 5, 6):
            a.insert(item)
        # No end_period/finalize: the current flags are still pending.
        merged = merge([a], num_periods=1)
        _, p = merged.estimate(5)
        assert p == 1


class TestMergeProperties:
    """Hypothesis: merge invariants on random sharded partitions."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=300),
        st.integers(2, 4),
        st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_sharded_merge_preserves_shard_estimates(
        self, events, num_shards, periods
    ):
        """With ample capacity, every item's merged estimate equals its
        (single) shard's estimate — merging loses nothing."""
        periods = min(periods, len(events))
        shards = []
        shard_events = [[] for _ in range(num_shards)]
        for e in events:
            shard_events[e % num_shards].append(e)
        for se in shard_events:
            ltc = fresh_ltc(w=8, d=8)
            if se:
                run(ltc, se, min(periods, len(se)))
            else:
                ltc.finalize()
            shards.append(ltc)
        merged = merge(shards)
        for e in set(events):
            assert merged.estimate(e) == shards[e % num_shards].estimate(e)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_merge_with_empty_summaries_is_identity(self, events):
        populated = run(fresh_ltc(w=4, d=4), events, min(3, len(events)))
        empties = [fresh_ltc(w=4, d=4) for _ in range(2)]
        merged = merge([populated] + empties)
        for e in set(events):
            assert merged.estimate(e) == populated.estimate(e)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative(self, events):
        a = run(fresh_ltc(), [e for e in events if e % 2 == 0] or [0], 1)
        b = run(fresh_ltc(), [e for e in events if e % 2 == 1] or [1], 1)
        ab = merge([a, b])
        ba = merge([b, a])
        for e in set(events) | {0, 1}:
            assert ab.estimate(e) == ba.estimate(e)
