"""A deliberately naive LTC used as a differential-testing oracle.

This implementation follows the paper's prose literally with per-cell
objects, explicit flag dictionaries and recomputed significances — no bit
tricks, no parallel arrays, no in-place micro-optimisations.  Its only
job is to be *obviously* correct so that
``tests/test_ltc_reference.py`` can assert the production implementation
is behaviourally identical on arbitrary streams.

Semantics mirrored exactly (they are part of the spec, not accidents):
ties for the smallest cell break towards the lowest cell index; the CLOCK
advances ``m/n`` slots per arrival via an integer accumulator and never
re-scans a slot within a period; ``end_period`` completes the sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hashing.family import splitmix64


class _RefCell:
    def __init__(self):
        self.key: Optional[int] = None
        self.freq = 0
        self.counter = 0
        self.flags: Dict[int, bool] = {0: False, 1: False}  # even, odd


class ReferenceLTC:
    """Naive LTC with the same constructor surface as the real one."""

    def __init__(
        self,
        num_buckets: int,
        bucket_width: int,
        alpha: float,
        beta: float,
        items_per_period: int,
        deviation_eliminator: bool = True,
        longtail_replacement: bool = True,
        seed: int = 0x17C,
    ):
        self.w = num_buckets
        self.d = bucket_width
        self.alpha = alpha
        self.beta = beta
        self.n = items_per_period
        self.de = deviation_eliminator
        self.ltr = longtail_replacement
        self.seed = splitmix64(seed)
        self.m = self.w * self.d
        self.cells = [_RefCell() for _ in range(self.m)]
        self.parity = 0
        self.hand = 0
        self.acc = 0
        self.scanned = 0

    # ------------------------------------------------------------- helpers
    def _sig(self, cell: _RefCell) -> float:
        return self.alpha * cell.freq + self.beta * cell.counter

    def _bucket_cells(self, item: int) -> List[int]:
        bucket = splitmix64(item ^ self.seed) % self.w
        return list(range(bucket * self.d, (bucket + 1) * self.d))

    def _current_flag(self) -> int:
        return self.parity if self.de else 0

    def _harvest_flag(self) -> int:
        return (1 - self.parity) if self.de else 0

    # ------------------------------------------------------------- updates
    def insert(self, item: int) -> None:
        indices = self._bucket_cells(item)
        hit = next((j for j in indices if self.cells[j].key == item), None)
        if hit is not None:
            self.cells[hit].freq += 1
            self.cells[hit].flags[self._current_flag()] = True
        else:
            empty = next((j for j in indices if self.cells[j].key is None), None)
            if empty is not None:
                self._take_cell(empty, item, 1, 0)
            else:
                self._significance_decrement(indices, item)
        self._advance_clock()

    def _take_cell(self, j: int, item: int, freq: int, counter: int) -> None:
        cell = self.cells[j]
        cell.key = item
        cell.freq = freq
        cell.counter = counter
        cell.flags = {0: False, 1: False}
        cell.flags[self._current_flag()] = True

    def _significance_decrement(self, indices: List[int], item: int) -> None:
        jmin = min(indices, key=lambda j: self._sig(self.cells[j]))
        victim = self.cells[jmin]
        if victim.counter > 0:
            victim.counter -= 1
        elif victim.freq > 0:
            # When the counter is empty the cell's remaining persistency
            # credit sits in un-harvested flags; if they cover the whole
            # post-decrement frequency, charge the decrement to the oldest
            # pending flag so a later harvest cannot leave
            # persistency > frequency (the structural claim of §III).
            pending = int(victim.flags[0]) + int(victim.flags[1])
            if pending >= victim.freq:
                harvest_flag = self._harvest_flag()
                if victim.flags[harvest_flag]:
                    victim.flags[harvest_flag] = False
                else:
                    victim.flags[self._current_flag()] = False
        if victim.freq > 0:
            victim.freq -= 1
        if self._sig(victim) <= 0:
            if self.ltr and self.d > 1:
                others = [self.cells[j] for j in indices if j != jmin]
                f2 = min(c.freq for c in others)
                c2 = min(c.counter for c in others)
                f0 = max(f2 - 1, 1)
                # The newcomer's set flag is one period of future
                # persistency credit: seed the counter at most f0 - 1.
                self._take_cell(jmin, item, f0, min(max(c2 - 1, 0), f0 - 1))
            else:
                self._take_cell(jmin, item, 1, 0)

    def _advance_clock(self) -> None:
        self.acc += self.m
        steps = self.acc // self.n
        self.acc -= steps * self.n
        self._scan(steps)

    def _scan(self, steps: int) -> None:
        steps = min(steps, self.m - self.scanned)
        for _ in range(max(steps, 0)):
            cell = self.cells[self.hand]
            flag = self._harvest_flag()
            if cell.flags[flag]:
                cell.flags[flag] = False
                if cell.key is not None:
                    cell.counter += 1
            self.hand = (self.hand + 1) % self.m
            self.scanned += 1

    def end_period(self) -> None:
        self._scan(self.m - self.scanned)
        self.scanned = 0
        self.acc = 0
        if self.de:
            self.parity ^= 1

    def finalize(self) -> None:
        for cell in self.cells:
            if cell.key is not None:
                cell.counter += int(cell.flags[0]) + int(cell.flags[1])
            cell.flags = {0: False, 1: False}

    # ------------------------------------------------------------- queries
    def estimate(self, item: int):
        for j in self._bucket_cells(item):
            if self.cells[j].key == item:
                return self.cells[j].freq, self.cells[j].counter
        return 0, 0

    def snapshot(self):
        """(key, freq, counter, flag0, flag1) per cell — for comparison."""
        return [
            (c.key, c.freq, c.counter, c.flags[0], c.flags[1])
            for c in self.cells
        ]
